"""Exporters: registry snapshot -> JSON document / Prometheus text.

The JSON document is the stable interchange format (schema
``repro.obs/v1``, checked into ``metrics_schema.json`` next to this
module): three sorted lists of ``{name, labels, value | stats}`` entries,
so two exports of equal registries are byte-identical files — which is
what lets CI diff a serial run's export against a ``--jobs 2`` run's.

The Prometheus text format is a rendering of the same snapshot for
scrape-style tooling; metric names are sanitized (``.``/``-`` become
``_``) and label values escaped per the exposition format.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from repro.obs.registry import Labels, MetricKey

SCHEMA_ID = "repro.obs/v1"

#: Counter-name prefixes excluded from the serial-vs-parallel determinism
#: contract: artifact-cache hits and misses depend on per-process cache
#: state (a cold worker misses where the warm serial process hits), so
#: they are real telemetry but not comparable across job counts.
NONDETERMINISTIC_PREFIXES = ("runtime.artifacts.",)


def _labels_dict(labels: Labels) -> Dict[str, str]:
    return {key: str(value) for key, value in labels}


def _sort_key(entry: Dict[str, Any]) -> Tuple[str, str]:
    return (entry["name"], json.dumps(entry["labels"], sort_keys=True))


def to_json_doc(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Render a registry snapshot (``obs.snapshot()``) as the schema'd
    JSON document."""
    counters = [
        {"name": name, "labels": _labels_dict(labels), "value": value}
        for (name, labels), value in snapshot.get("counters", {}).items()
    ]
    gauges = [
        {"name": name, "labels": _labels_dict(labels), "value": value}
        for (name, labels), value in snapshot.get("gauges", {}).items()
    ]
    histograms = [
        {
            "name": name,
            "labels": _labels_dict(labels),
            "count": count,
            "sum": total,
            "min": minimum,
            "max": maximum,
        }
        for (name, labels), (count, total, minimum, maximum, _samples)
        in snapshot.get("histograms", {}).items()
    ]
    return {
        "schema": SCHEMA_ID,
        "counters": sorted(counters, key=_sort_key),
        "gauges": sorted(gauges, key=_sort_key),
        "histograms": sorted(histograms, key=_sort_key),
    }


def to_json_text(snapshot: Dict[str, Any]) -> str:
    return json.dumps(to_json_doc(snapshot), indent=2, sort_keys=True) + "\n"


def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{_prom_name(key)}="{_escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + rendered + "}"


def to_prometheus_text(snapshot: Dict[str, Any]) -> str:
    """Prometheus exposition-format rendering of the snapshot. Counters
    get a ``_total`` suffix; histograms export ``_count``/``_sum`` plus
    min/max gauges (the bounded reservoir is not exported)."""
    doc = to_json_doc(snapshot)
    lines: List[str] = []
    seen_types = set()

    def _type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in doc["counters"]:
        name = _prom_name(entry["name"]) + "_total"
        _type_line(name, "counter")
        lines.append(f"{name}{_prom_labels(entry['labels'])} {entry['value']}")
    for entry in doc["gauges"]:
        name = _prom_name(entry["name"])
        _type_line(name, "gauge")
        lines.append(f"{name}{_prom_labels(entry['labels'])} {entry['value']}")
    for entry in doc["histograms"]:
        base = _prom_name(entry["name"])
        labels = _prom_labels(entry["labels"])
        _type_line(base, "summary")
        lines.append(f"{base}_count{labels} {entry['count']}")
        lines.append(f"{base}_sum{labels} {entry['sum']}")
        lines.append(f"{base}_min{labels} {entry['min']}")
        lines.append(f"{base}_max{labels} {entry['max']}")
    return "\n".join(lines) + "\n"


def write_metrics(path: str, snapshot: Dict[str, Any]) -> str:
    """Write the snapshot to ``path``; ``.prom``/``.txt`` extensions get
    Prometheus text, anything else the JSON document. Returns the format
    written ('prometheus' or 'json')."""
    lowered = path.lower()
    if lowered.endswith((".prom", ".txt")):
        text, fmt = to_prometheus_text(snapshot), "prometheus"
    else:
        text, fmt = to_json_text(snapshot), "json"
    with open(path, "w") as fh:
        fh.write(text)
    return fmt


def deterministic_counters(doc_or_snapshot: Dict[str, Any]) -> Dict[str, int]:
    """The counters covered by the serial-vs-parallel determinism
    contract, flattened to ``name{k=v,...} -> value``. Accepts either a
    registry snapshot or an exported JSON document. Artifact-cache
    counters (see :data:`NONDETERMINISTIC_PREFIXES`) are excluded;
    histograms (which include wall-clock span timings) never participate.
    """
    if "schema" in doc_or_snapshot:
        entries = [
            ((e["name"], tuple(sorted(e["labels"].items()))), e["value"])
            for e in doc_or_snapshot.get("counters", [])
        ]
    else:
        entries = [
            ((name, tuple(sorted(labels))), value)
            for (name, labels), value in doc_or_snapshot.get(
                "counters", {}
            ).items()
        ]
    out: Dict[str, int] = {}
    for (name, labels), value in entries:
        if name.startswith(NONDETERMINISTIC_PREFIXES):
            continue
        rendered = ",".join(f"{k}={v}" for k, v in labels)
        out[f"{name}{{{rendered}}}"] = value
    return out
