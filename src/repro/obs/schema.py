"""The checked-in export schema and a dependency-free validator.

``metrics_schema.json`` (shipped as package data next to this module) is
the contract for ``repro.obs/v1`` JSON exports; CI validates every
export against it. The validator below implements exactly the JSON
Schema subset that file uses — ``type``, ``const``, ``required``,
``properties``, ``additionalProperties``, ``items`` — so validation
works in environments without the ``jsonschema`` package (the CI image
installs only ``.[test]``). When ``jsonschema`` *is* importable, it is
run as well, so the subset validator can never silently drift from the
real semantics.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "metrics_schema.json")


def load_schema() -> Dict[str, Any]:
    with open(SCHEMA_PATH) as fh:
        return json.load(fh)


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; JSON Schema says it is neither.
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _validate(value: Any, schema: Dict[str, Any], path: str, errors: List[str]) -> None:
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}, got {value!r}")
        return
    expected_type = schema.get("type")
    if expected_type is not None and not _TYPE_CHECKS[expected_type](value):
        errors.append(
            f"{path}: expected {expected_type}, got {type(value).__name__}"
        )
        return
    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                errors.append(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for name, item in value.items():
            if name in properties:
                _validate(item, properties[name], f"{path}.{name}", errors)
            elif isinstance(additional, dict):
                _validate(item, additional, f"{path}.{name}", errors)
            elif additional is False:
                errors.append(f"{path}: unexpected property {name!r}")
    elif isinstance(value, list):
        item_schema = schema.get("items")
        if item_schema is not None:
            for index, item in enumerate(value):
                _validate(item, item_schema, f"{path}[{index}]", errors)


def validation_errors(doc: Any, schema: Dict[str, Any] = None) -> List[str]:
    """Schema violations in ``doc`` ([] when valid)."""
    if schema is None:
        schema = load_schema()
    errors: List[str] = []
    _validate(doc, schema, "$", errors)
    if not errors:
        try:
            import jsonschema  # optional cross-check, never required
        except ImportError:
            pass
        else:
            try:
                jsonschema.validate(doc, schema)
            except jsonschema.ValidationError as exc:  # pragma: no cover
                errors.append(f"jsonschema: {exc.message}")
    return errors


def validate_export(doc: Any) -> None:
    """Raise ``ValueError`` when ``doc`` violates the v1 export schema."""
    errors = validation_errors(doc)
    if errors:
        raise ValueError(
            "metrics export fails schema validation:\n  " + "\n  ".join(errors)
        )
