"""Unified observability: one registry, spans, deterministic merging.

``repro.obs`` is a **leaf** module (stdlib only, importable from every
layer, including :mod:`repro.amq`) holding one module-global
:class:`~repro.obs.registry.MetricsRegistry` that is *off by default*.
Instrumented call sites follow one idiom::

    reg = obs.registry()
    if reg is not None:
        reg.inc("tls.handshake.attempts", 1)

so a disabled registry costs a global read and a ``None`` check — the
near-zero overhead budget ``benchmarks/bench_fig5_sessions.py`` asserts.
Cold paths may use the :func:`inc`/:func:`set_gauge`/:func:`observe`
conveniences, which hide the check.

Spans time a block into a ``<name>.seconds`` histogram::

    with obs.span("tls.server.flight"):
        flight = server.process_client_hello(hello)

When disabled, :func:`span` returns a shared no-op context manager.

:func:`scoped` swaps in a fresh registry for a block and is the
worker-merge primitive: :func:`repro.runtime.parallel.run_metered` runs
one work item inside a scope, ships the scope's snapshot back with the
item's result, and the parent merges snapshots in item order — so serial
and parallel runs produce identical merged counters (see
``docs/architecture.md`` for what is and is not in the deterministic
set).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.obs.registry import (
    Histogram,
    Labels,
    MetricKey,
    MetricsRegistry,
    RESERVOIR_CAP,
)

__all__ = [
    "Histogram",
    "Labels",
    "MetricKey",
    "MetricsRegistry",
    "RESERVOIR_CAP",
    "disable",
    "enable",
    "enabled",
    "inc",
    "merge",
    "observe",
    "registry",
    "reset",
    "scoped",
    "set_gauge",
    "snapshot",
    "span",
]

#: The active registry; ``None`` means observability is off.
_REGISTRY: Optional[MetricsRegistry] = None


def registry() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` when disabled. Hot paths hoist
    this once per call and branch on ``is not None``."""
    return _REGISTRY


def enabled() -> bool:
    return _REGISTRY is not None


def enable() -> MetricsRegistry:
    """Turn metrics on (idempotent); returns the active registry."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = MetricsRegistry()
    return _REGISTRY


def disable() -> None:
    """Turn metrics off and drop the registry."""
    global _REGISTRY
    _REGISTRY = None


def reset() -> None:
    """Clear the active registry's contents (no-op when disabled)."""
    if _REGISTRY is not None:
        _REGISTRY.clear()


# -- recording conveniences (cold paths; hot paths hoist registry()) ---------


def inc(name: str, value: int = 1, labels: Labels = ()) -> None:
    reg = _REGISTRY
    if reg is not None:
        reg.inc(name, value, labels)


def set_gauge(name: str, value: float, labels: Labels = ()) -> None:
    reg = _REGISTRY
    if reg is not None:
        reg.set_gauge(name, value, labels)


def observe(name: str, value: float, labels: Labels = ()) -> None:
    reg = _REGISTRY
    if reg is not None:
        reg.observe(name, value, labels)


# -- spans --------------------------------------------------------------------


class _NullSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """Times a block into the ``<name>.seconds`` histogram."""

    __slots__ = ("_reg", "_name", "_labels", "_start")

    def __init__(self, reg: MetricsRegistry, name: str, labels: Labels) -> None:
        self._reg = reg
        self._name = name
        self._labels = labels

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._reg.observe(
            self._name + ".seconds",
            time.perf_counter() - self._start,
            self._labels,
        )


def span(name: str, labels: Labels = ()):
    """Context manager timing a block into ``<name>.seconds``; a shared
    no-op object when metrics are disabled."""
    reg = _REGISTRY
    if reg is None:
        return _NULL_SPAN
    return _Span(reg, name, labels)


# -- snapshot / merge / scoping ------------------------------------------------


def snapshot() -> Dict[str, Any]:
    """Picklable copy of the active registry ({} when disabled)."""
    return _REGISTRY.snapshot() if _REGISTRY is not None else {}


def merge(snap: Dict[str, Any]) -> None:
    """Fold a snapshot into the active registry (no-op when disabled)."""
    if _REGISTRY is not None and snap:
        _REGISTRY.merge(snap)


@contextmanager
def scoped() -> Iterator[MetricsRegistry]:
    """Swap in a fresh registry for the duration of the block.

    Works whether or not metrics were enabled: instrumented code inside
    the block records into the scope's registry either way, which is how
    worker processes capture per-item deltas without depending on their
    own (inherited or absent) global state. The previous registry — or
    disabled state — is restored on exit.
    """
    global _REGISTRY
    previous = _REGISTRY
    scope = MetricsRegistry()
    _REGISTRY = scope
    try:
        yield scope
    finally:
        _REGISTRY = previous
