"""The metrics registry: counters, gauges, bounded histograms.

A :class:`MetricsRegistry` is a plain in-process store keyed by
``(metric name, labels)`` where labels are a tuple of ``(key, value)``
pairs. Three metric families cover what the experiments need:

* **counters** — monotone integers (handshake attempts, AMQ ops,
  false-positive retries). ``merge`` adds them, so per-item snapshots
  recombine into exactly the totals a serial run would have counted.
* **gauges** — last-written values (configured epsilon, bytes-saved
  totals, cache hit ratios at export time). ``merge`` is last-write-wins
  in merge order.
* **histograms** — count/sum/min/max plus a bounded reservoir of the
  first ``RESERVOIR_CAP`` observations (deterministic, no sampling RNG).
  ``merge`` appends the incoming reservoir in order and re-caps, so
  merging per-item snapshots in item order is reproducible.

Everything in a registry (and in its :meth:`~MetricsRegistry.snapshot`)
is picklable built-in types, which is what lets
:mod:`repro.runtime.parallel` ship per-item metric deltas back from
worker processes and merge them in item order. The registry is not
thread-safe; the experiment engine is process-parallel, never
thread-parallel.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

LabelPair = Tuple[str, str]
Labels = Tuple[LabelPair, ...]
MetricKey = Tuple[str, Labels]

#: Bound on stored histogram observations. The first N samples are kept
#: verbatim (deterministic across runs); count/sum/min/max always cover
#: every observation.
RESERVOIR_CAP = 512


def _normalize_labels(labels: Union[Labels, Iterable[LabelPair]]) -> Labels:
    """Labels enter as a tuple of (key, value) pairs; call sites on hot
    paths precompute the tuple so this is a no-op there."""
    if isinstance(labels, tuple):
        return labels
    return tuple(labels)


class Histogram:
    """count/sum/min/max plus the first ``RESERVOIR_CAP`` samples."""

    __slots__ = ("count", "total", "minimum", "maximum", "samples")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self.samples) < RESERVOIR_CAP:
            self.samples.append(value)

    def state(self) -> Tuple[int, float, float, float, List[float]]:
        return (
            self.count,
            self.total,
            self.minimum,
            self.maximum,
            list(self.samples),
        )

    def merge_state(
        self, state: Tuple[int, float, float, float, List[float]]
    ) -> None:
        count, total, minimum, maximum, samples = state
        self.count += count
        self.total += total
        if minimum < self.minimum:
            self.minimum = minimum
        if maximum > self.maximum:
            self.maximum = maximum
        room = RESERVOIR_CAP - len(self.samples)
        if room > 0:
            self.samples.extend(samples[:room])


class MetricsRegistry:
    """Process-local metric store (see module docstring)."""

    __slots__ = ("_counters", "_gauges", "_histograms", "events")

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, int] = {}
        self._gauges: Dict[MetricKey, float] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}
        #: Recording calls served by this registry instance — the number
        #: of instrumentation events the hot paths fired while enabled.
        #: Process-local: deliberately absent from snapshots and merges
        #: (the benchmark uses it to price what the same events would
        #: cost with the registry disabled).
        self.events = 0

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, value: int = 1, labels: Labels = ()) -> None:
        self.events += 1
        key = (name, _normalize_labels(labels))
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, labels: Labels = ()) -> None:
        self.events += 1
        self._gauges[(name, _normalize_labels(labels))] = value

    def observe(self, name: str, value: float, labels: Labels = ()) -> None:
        self.events += 1
        key = (name, _normalize_labels(labels))
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram()
        hist.observe(value)

    # -- reading -------------------------------------------------------------

    def counter(self, name: str, labels: Labels = ()) -> int:
        return self._counters.get((name, _normalize_labels(labels)), 0)

    def gauge(self, name: str, labels: Labels = ()) -> Optional[float]:
        return self._gauges.get((name, _normalize_labels(labels)))

    def histogram(self, name: str, labels: Labels = ()) -> Optional[Histogram]:
        return self._histograms.get((name, _normalize_labels(labels)))

    def counters_with_name(self, name: str) -> Dict[Labels, int]:
        """Every labeled series of counter ``name``."""
        return {
            labels: value
            for (n, labels), value in self._counters.items()
            if n == name
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- snapshot / merge ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A picklable copy of every metric (ships across process
        boundaries and feeds the exporters)."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                key: hist.state() for key, hist in self._histograms.items()
            },
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a snapshot in: counters add, gauges overwrite, histograms
        append their reservoirs in order. Merging per-item snapshots in
        item order therefore yields identical registries whether the
        items ran serially or sharded across workers."""
        for key, value in snapshot.get("counters", {}).items():
            self._counters[key] = self._counters.get(key, 0) + value
        self._gauges.update(snapshot.get("gauges", {}))
        for key, state in snapshot.get("histograms", {}).items():
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram()
            hist.merge_state(state)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.events = 0
