"""Expected handshake-duration models (§4.2).

The paper states the large-scale expected duration of the proposed scheme
as ``(1 - eps) * d_c + eps * d_PQ`` where ``d_c`` is a conventional-size
handshake (suppression hit: no extra round trips) and ``d_PQ`` the full PQ
handshake. Its own §4.2 prose, however, notes the false-positive case
costs "the duration of a conventional TLS handshake d_c **plus** the full
duration of a PQ TLS handshake d_PQ" (the failed attempt is paid for, then
the retry). Both models are provided; they differ by ``eps * d_c``, which
is negligible at the paper's 0.1% FPP — EXPERIMENTS.md reports both.

``HandshakeTimeModel`` grounds ``d_c``/``d_PQ`` in the flight model so the
estimator and the packet-level simulation agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.netsim.tcp import TCPConfig, handshake_duration_s
from repro.pki.algorithms import SignatureAlgorithm, get_kem_algorithm


def _check_eps(eps: float) -> None:
    if not 0.0 <= eps <= 1.0:
        raise ConfigurationError(f"eps must be in [0, 1], got {eps}")


def expected_duration_paper_model(d_c: float, d_pq: float, eps: float) -> float:
    """The formula as printed: ``(1 - eps) * d_c + eps * d_PQ``."""
    _check_eps(eps)
    return (1 - eps) * d_c + eps * d_pq


def expected_duration_refined(d_c: float, d_pq: float, eps: float) -> float:
    """False positives pay for the failed suppressed attempt *and* the
    plain retry: ``(1 - eps) * d_c + eps * (d_c + d_PQ)``."""
    _check_eps(eps)
    return (1 - eps) * d_c + eps * (d_c + d_pq)


@dataclass(frozen=True)
class HandshakeTimeModel:
    """Grounds d_c and d_PQ in the TCP flight model for one deployment.

    ``suppressed_flight_bytes`` is the server flight with ICAs omitted;
    ``full_flight_bytes`` with the complete chain. CPU time covers the
    asymmetric operations (KEM + signature verify/sign) and is tiny next
    to round trips for everything except SPHINCS+ signing.
    """

    client_hello_bytes: int
    suppressed_flight_bytes: int
    full_flight_bytes: int
    crypto_cpu_s: float = 0.0
    tcp: TCPConfig = TCPConfig()

    def d_suppressed(self, rtt_s: float) -> float:
        return handshake_duration_s(
            self.client_hello_bytes,
            self.suppressed_flight_bytes,
            rtt_s,
            self.tcp,
            self.crypto_cpu_s,
        )

    def d_full(self, rtt_s: float) -> float:
        return handshake_duration_s(
            self.client_hello_bytes,
            self.full_flight_bytes,
            rtt_s,
            self.tcp,
            self.crypto_cpu_s,
        )

    def expected(self, rtt_s: float, eps: float, refined: bool = True) -> float:
        d_c = self.d_suppressed(rtt_s)
        d_pq = self.d_full(rtt_s)
        model = expected_duration_refined if refined else expected_duration_paper_model
        return model(d_c, d_pq, eps)

    def speedup(self, rtt_s: float, eps: float) -> float:
        """d_full / expected — >1 whenever suppression pays off."""
        expected = self.expected(rtt_s, eps)
        return self.d_full(rtt_s) / expected if expected > 0 else float("inf")


def crypto_cpu_seconds(
    signature_algorithm: SignatureAlgorithm,
    kem_name: str = "x25519",
    num_verifies: int = 4,
) -> float:
    """Per-handshake asymmetric CPU time: KEM keygen+encaps+decaps, the
    server's CertificateVerify signing, and the client's ``num_verifies``
    signature verifications (chain + CV + staples)."""
    kem = get_kem_algorithm(kem_name)
    total_ms = (
        kem.keygen_ms
        + kem.encaps_ms
        + kem.decaps_ms
        + signature_algorithm.sign_ms
        + num_verifies * signature_algorithm.verify_ms
    )
    return total_ms / 1000.0
