"""Dynamic filter maintenance.

§4.2: "we assume that the filter supports dynamic updates (e.g.,
insertions/deletions) since creating a new filter for every TLS connection
or for every single-cert change would be computationally inefficient."

``FilterManager`` subscribes to an :class:`~repro.core.cache.ICACache` and
mirrors every add/remove into the live AMQ filter. When an insert
overflows the structure, the manager rebuilds at a larger capacity (a
rare, amortized event — counted so experiments can report it).
"""

from __future__ import annotations

from typing import List, Optional

from repro import obs
from repro.amq import AMQFilter, FilterParams, canonical_params
from repro.amq.serialization import filter_class_for_name
from repro.core.cache import ICACache
from repro.core.filter_config import FilterPlan
from repro.errors import FilterFullError
from repro.pki.certificate import Certificate


class FilterManager:
    """Keeps an AMQ filter in sync with an ICA cache."""

    def __init__(self, cache: ICACache, plan: FilterPlan) -> None:
        self._cache = cache
        self._plan = plan
        self._filter = plan.build(cache.fingerprints())
        self.inserts = 0
        self.deletes = 0
        self.rebuilds = 0
        #: Monotone mutation counter; consumers (e.g. the suppressor's
        #: payload memoization) use it to detect any filter change,
        #: including equal-count churn. Batch mutations advance it **per
        #: item**, never per call, so experiment counters (Table 2 /
        #: Fig. 5) stay comparable whichever path performed the update.
        self.version = 0
        cache.subscribe(
            on_add_batch=self._on_add_batch,
            on_remove_batch=self._on_remove_batch,
        )

    @property
    def filter(self) -> AMQFilter:
        return self._filter

    @property
    def plan(self) -> FilterPlan:
        return self._plan

    # -- cache listeners ------------------------------------------------------

    def _on_add_batch(self, certs: List[Certificate]) -> None:
        # Counters advance item-by-item: a 100-cert bulk load and 100
        # organic single adds report identical inserts/version totals.
        self.inserts += len(certs)
        self.version += len(certs)
        obs.inc("core.filter_manager.inserts", len(certs))
        try:
            self._filter.insert_batch([cert.fingerprint() for cert in certs])
        except FilterFullError:
            # The cache already holds every cert of the batch, so the
            # rebuild re-inserts the ones the failed batch left behind.
            self._rebuild()

    def _on_remove_batch(self, certs: List[Certificate]) -> None:
        # Same per-item accounting as inserts: an expiry sweep dropping N
        # certs and N scalar removes report identical deletes/version.
        self.deletes += len(certs)
        self.version += len(certs)
        obs.inc("core.filter_manager.deletes", len(certs))
        if self._filter.supports_deletion:
            self._filter.delete_batch([cert.fingerprint() for cert in certs])
        else:
            # Bloom baseline: deletion requires a rebuild (the exact
            # inefficiency §4.1 calls out — measured, not hidden). One
            # rebuild per batch, not per item: a revocation sweep costs a
            # single reconstruction however many certs it drops.
            self._rebuild()

    # -- maintenance -----------------------------------------------------------

    def _rebuild(self, capacity: Optional[int] = None) -> None:
        self.rebuilds += 1
        self.version += 1
        obs.inc("core.filter_manager.rebuilds")
        with obs.span(
            "core.filter_manager.rebuild",
            (("backend", self._plan.filter_kind),),
        ):
            needed = max(len(self._cache), 1)
            new_capacity = capacity or max(
                self._plan.params.capacity, int(needed * 1.25) + 8
            )
            params = canonical_params(
                FilterParams(
                    capacity=new_capacity,
                    fpp=self._plan.params.fpp,
                    load_factor=self._plan.params.load_factor,
                    seed=self._plan.params.seed,
                )
            )
            cls = filter_class_for_name(self._plan.filter_kind)
            self._filter = cls.build_from_fingerprints(
                params, self._cache.fingerprints()
            )

    def force_rebuild(self) -> None:
        """Rebuild at the planned capacity (e.g. after bulk expiry, to
        reclaim the false-positive budget of a churned filter)."""
        self._rebuild(capacity=self._plan.params.capacity)

    def consistent_with_cache(self) -> bool:
        """Every cached ICA must be present in the filter (the
        no-false-negative contract the suppression pipeline relies on)."""
        return all(self._filter.contains_batch(self._cache.fingerprints()))
