"""Dynamic filter maintenance.

§4.2: "we assume that the filter supports dynamic updates (e.g.,
insertions/deletions) since creating a new filter for every TLS connection
or for every single-cert change would be computationally inefficient."

``FilterManager`` subscribes to an :class:`~repro.core.cache.ICACache` and
mirrors every add/remove into the live AMQ filter. When an insert
overflows the structure, the manager rebuilds at a larger capacity (a
rare, amortized event — counted so experiments can report it).
"""

from __future__ import annotations

from typing import List, Optional

from repro import obs
from repro.amq import AMQFilter, FilterParams, canonical_params
from repro.amq.delta import delta_seed
from repro.amq.serialization import filter_class_for_name
from repro.core.cache import ICACache
from repro.core.filter_config import FilterPlan
from repro.errors import ConfigurationError, FilterFullError
from repro.pki.certificate import Certificate


class FilterManager:
    """Keeps an AMQ filter in sync with an ICA cache."""

    def __init__(self, cache: ICACache, plan: FilterPlan) -> None:
        self._cache = cache
        self._plan = plan
        self._filter = plan.build(cache.fingerprints())
        self.inserts = 0
        self.deletes = 0
        self.rebuilds = 0
        #: Monotone mutation counter; consumers (e.g. the suppressor's
        #: payload memoization) use it to detect any filter change,
        #: including equal-count churn. Batch mutations advance it **per
        #: item**, never per call, so experiment counters (Table 2 /
        #: Fig. 5) stay comparable whichever path performed the update.
        self.version = 0
        #: Active delta-application epoch (see :meth:`apply_delta`); when
        #: set, listener-triggered rebuilds are deferred and coalesced so
        #: one patch causes at most one reconstruction.
        self._epoch: "Optional[dict]" = None
        cache.subscribe(
            on_add_batch=self._on_add_batch,
            on_remove_batch=self._on_remove_batch,
        )

    @property
    def filter(self) -> AMQFilter:
        return self._filter

    @property
    def plan(self) -> FilterPlan:
        return self._plan

    # -- cache listeners ------------------------------------------------------

    def _on_add_batch(self, certs: List[Certificate]) -> None:
        # Counters advance item-by-item: a 100-cert bulk load and 100
        # organic single adds report identical inserts/version totals.
        self.inserts += len(certs)
        self.version += len(certs)
        obs.inc("core.filter_manager.inserts", len(certs))
        if self._epoch is not None and self._epoch["rebuild"]:
            # The pending end-of-epoch rebuild reconstructs from the
            # cache, which already includes this batch; inserting here
            # would be wasted work into a filter about to be replaced.
            return
        try:
            self._filter.insert_batch([cert.fingerprint() for cert in certs])
        except FilterFullError:
            # The cache already holds every cert of the batch, so the
            # rebuild re-inserts the ones the failed batch left behind.
            if self._epoch is not None:
                self._epoch["rebuild"] = True
            else:
                self._rebuild()

    def _on_remove_batch(self, certs: List[Certificate]) -> None:
        # Same per-item accounting as inserts: an expiry sweep dropping N
        # certs and N scalar removes report identical deletes/version.
        self.deletes += len(certs)
        self.version += len(certs)
        obs.inc("core.filter_manager.deletes", len(certs))
        if self._filter.supports_deletion and (
            self._epoch is None or not self._epoch["rebuild"]
        ):
            self._filter.delete_batch([cert.fingerprint() for cert in certs])
        elif self._epoch is not None:
            # Inside a delta epoch the rebuild is deferred to the epoch
            # end so the remove- and add-halves of one patch coalesce
            # into at most one reconstruction (previously the removal
            # rebuild and an overflowing add's rebuild could both fire
            # for a single application).
            self._epoch["rebuild"] = True
        else:
            # Bloom baseline: deletion requires a rebuild (the exact
            # inefficiency §4.1 calls out — measured, not hidden). One
            # rebuild per batch, not per item: a revocation sweep costs a
            # single reconstruction however many certs it drops.
            self._rebuild()

    # -- delta application -----------------------------------------------------

    def apply_delta(
        self,
        added: List[Certificate],
        removed: List[Certificate],
        version: Optional[int] = None,
    ) -> None:
        """Apply one versioned patch (remove then add) to cache and filter.

        Each cache mutation fires its batch listener exactly once — one
        ``on_remove_batch`` for the removal half, one ``on_add_batch``
        for the addition half — and however the two halves overlap with
        rebuild triggers (deletion-free family, insert overflow), the
        epoch guard coalesces them into at most **one** rebuild, fired
        after both halves with ``version`` folded into the rebuild seed
        (:func:`repro.amq.delta.delta_seed`).

        Raises ConfigurationError before any mutation when ``removed``
        names a certificate the cache does not hold (a malformed patch
        must not half-apply).
        """
        for cert in removed:
            if cert not in self._cache:
                raise ConfigurationError(
                    "delta removes a certificate the cache does not hold: "
                    f"{cert.subject!r}"
                )
        self._epoch = {"version": version, "rebuild": False}
        try:
            if removed:
                self._cache.remove_many(removed)
            if added:
                self._cache.add_many(added)
            epoch = self._epoch
        finally:
            self._epoch = None
        if epoch["rebuild"]:
            self._rebuild(version=epoch["version"])
        obs.inc("core.filter_manager.delta_applies")

    # -- maintenance -----------------------------------------------------------

    def _rebuild(
        self, capacity: Optional[int] = None, version: Optional[int] = None
    ) -> None:
        self.rebuilds += 1
        self.version += 1
        obs.inc("core.filter_manager.rebuilds")
        with obs.span(
            "core.filter_manager.rebuild",
            (("backend", self._plan.filter_kind),),
        ):
            needed = max(len(self._cache), 1)
            new_capacity = capacity or max(
                self._plan.params.capacity, int(needed * 1.25) + 8
            )
            seed = self._plan.params.seed
            if version is not None:
                # Delta-driven rebuilds fold the patch's version id into
                # the hash seed so the advertised image matches what a
                # DeltaApplier derives for the same version.
                seed = delta_seed(self._plan.filter_kind, seed, version)
            params = canonical_params(
                FilterParams(
                    capacity=new_capacity,
                    fpp=self._plan.params.fpp,
                    load_factor=self._plan.params.load_factor,
                    seed=seed,
                )
            )
            cls = filter_class_for_name(self._plan.filter_kind)
            self._filter = cls.build_from_fingerprints(
                params, self._cache.fingerprints()
            )

    def force_rebuild(self) -> None:
        """Rebuild at the planned capacity (e.g. after bulk expiry, to
        reclaim the false-positive budget of a churned filter)."""
        self._rebuild(capacity=self._plan.params.capacity)

    def consistent_with_cache(self) -> bool:
        """Every cached ICA must be present in the filter (the
        no-false-negative contract the suppression pipeline relies on)."""
        return all(self._filter.contains_batch(self._cache.fingerprints()))
