"""The paper's contribution: AMQ-filter-based ICA certificate suppression.

``repro.core`` wires the substrates together into the two pipelines of
Fig. 2:

* client side — an :class:`~repro.core.cache.ICACache` of known
  intermediates feeds a :class:`~repro.core.manager.FilterManager` that
  keeps a dynamically-updated AMQ filter in sync; the
  :class:`~repro.core.suppression.ClientSuppressor` serializes it into the
  ClientHello extension and completes suppressed verification paths from
  the cache;
* server side — the :class:`~repro.core.suppression.ServerSuppressor`
  deserializes the advertised filter and omits every ICA on its
  verification path that the filter reports as known.

:mod:`repro.core.filter_config` plans filter capacity/FPP against the
ClientHello byte budget of §5.2, and :mod:`repro.core.estimator`
implements the expected-handshake-time model of §4.2.
"""

from repro.core.cache import ICACache
from repro.core.filter_config import (
    FilterPlan,
    plan_filter,
    clienthello_base_bytes,
    clienthello_filter_budget,
    DEFAULT_FILTER_BUDGET_BYTES,
)
from repro.core.extension import (
    build_extension_payload,
    parse_extension_payload,
    extension_payload_bytes,
)
from repro.core.manager import FilterManager
from repro.core.suppression import ClientSuppressor, ServerSuppressor
from repro.core.adaptive import AdaptiveSuppressor, PeerHistory
from repro.core.estimator import (
    expected_duration_paper_model,
    expected_duration_refined,
    HandshakeTimeModel,
)

__all__ = [
    "ICACache",
    "FilterPlan",
    "plan_filter",
    "clienthello_base_bytes",
    "clienthello_filter_budget",
    "DEFAULT_FILTER_BUDGET_BYTES",
    "build_extension_payload",
    "parse_extension_payload",
    "extension_payload_bytes",
    "FilterManager",
    "ClientSuppressor",
    "ServerSuppressor",
    "AdaptiveSuppressor",
    "PeerHistory",
    "expected_duration_paper_model",
    "expected_duration_refined",
    "HandshakeTimeModel",
]
