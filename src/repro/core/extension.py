"""IC-suppression extension payload codec.

The ClientHello extension body is simply the AMQ wire image (the AMQ
header already names "the specific filter used (e.g., Quotient, Cuckoo)"
plus its parameters, which is all §4.2 requires the peers to share). This
module is the narrow waist between :mod:`repro.core` and :mod:`repro.tls`:
the TLS layer carries opaque bytes; both suppressor classes go through
these helpers.
"""

from __future__ import annotations

from repro.amq import AMQFilter, deserialize_filter, serialize_filter
from repro.errors import FilterSerializationError


def build_extension_payload(filt: AMQFilter) -> bytes:
    """Serialize ``filt`` into the extension body."""
    return serialize_filter(filt)


def parse_extension_payload(payload: bytes) -> AMQFilter:
    """Reconstruct the advertised filter; raises FilterSerializationError
    on any malformed input (the server then ignores the extension, which
    is the safe failure mode — a normal unsuppressed handshake)."""
    return deserialize_filter(payload)


def extension_payload_bytes(filt: AMQFilter) -> int:
    """Extension body size for budget accounting."""
    return len(serialize_filter(filt))
