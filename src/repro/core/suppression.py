"""The client and server suppression pipelines of Fig. 2.

``ClientSuppressor`` owns the cache + filter and produces ready-to-use
:class:`~repro.tls.client.ClientConfig` objects; ``ServerSuppressor`` is
the TLS server's suppression handler: it deserializes the advertised
filter (memoizing by payload, since a client reuses one filter across
many handshakes) and queries each ICA on the server's verification path.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Set

from repro import obs
from repro.amq import AMQFilter
from repro.core.cache import ICACache
from repro.core.extension import build_extension_payload, parse_extension_payload
from repro.core.filter_config import FilterPlan, plan_filter
from repro.core.manager import FilterManager
from repro.errors import FilterSerializationError
from repro.pki.chain import CertificateChain
from repro.pki.store import IntermediatePreload
from repro.tls.client import ClientConfig


class ClientSuppressor:
    """Client-side state: ICA cache, managed filter, extension payload."""

    def __init__(
        self,
        cache: Optional[ICACache] = None,
        plan: Optional[FilterPlan] = None,
        preload: Optional[IntermediatePreload] = None,
        filter_kind: str = "cuckoo",
        fpp: float = 1e-3,
        load_factor: float = 0.9,
        budget_bytes: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self.cache = cache or ICACache()
        if preload is not None:
            self.cache.load_preload(preload)
        if plan is None:
            plan = plan_filter(
                num_icas=max(1, len(self.cache)),
                filter_kind=filter_kind,
                fpp=fpp,
                load_factor=load_factor,
                budget_bytes=budget_bytes,
                seed=seed,
                headroom=1.0,
            )
        self.manager = FilterManager(self.cache, plan)
        self._payload_cache: Optional[bytes] = None
        self._payload_version: int = -1

    @property
    def filter(self) -> AMQFilter:
        return self.manager.filter

    def extension_payload(self) -> bytes:
        """Serialized filter for the ClientHello (memoized until the
        manager records any filter mutation)."""
        if self._payload_cache is None or self._payload_version != (
            self.manager.version
        ):
            self._payload_cache = build_extension_payload(self.manager.filter)
            self._payload_version = self.manager.version
        return self._payload_cache

    def client_config(
        self,
        trust_store,
        hostname: str,
        kem_name: str = "x25519",
        at_time: int = 0,
        use_suppression: bool = True,
        revocation=None,
        seed: int = 0,
    ) -> ClientConfig:
        """A ClientConfig wired to this suppressor's cache and filter."""
        return ClientConfig(
            trust_store=trust_store,
            kem_name=kem_name,
            hostname=hostname,
            at_time=at_time,
            ica_filter_payload=self.extension_payload() if use_suppression else None,
            issuer_lookup=self.cache.lookup_issuer,
            revocation=revocation,
            seed=seed,
        )

    def learn_from(self, chain: CertificateChain) -> int:
        """Cache the ICAs observed in a completed handshake."""
        return self.cache.observe_chain(chain)

    def maintain(self, at_time: int, revocation=None) -> "tuple[int, int]":
        """Periodic maintenance: drop expired and revoked ICAs (filter
        deletions happen through the manager's subscription). Returns
        (expired, revoked) counts."""
        expired = self.cache.sweep_expired(at_time)
        revoked = (
            self.cache.apply_revocations(revocation) if revocation is not None else 0
        )
        return expired, revoked


class ServerSuppressor:
    """Server-side suppression handler (plug into ServerConfig)."""

    def __init__(self, max_cached_filters: int = 64) -> None:
        self._filters: Dict[bytes, Optional[AMQFilter]] = {}
        self._max_cached = max_cached_filters
        self.lookups = 0
        self.hits = 0
        self.malformed_payloads = 0

    def _filter_for(self, payload: bytes) -> Optional[AMQFilter]:
        key = hashlib.sha256(payload).digest()
        if key in self._filters:
            return self._filters[key]
        try:
            filt: Optional[AMQFilter] = parse_extension_payload(payload)
        except FilterSerializationError:
            self.malformed_payloads += 1
            obs.inc("core.suppressor.malformed_payloads")
            filt = None
        if len(self._filters) >= self._max_cached:
            # Drop the oldest entry (insertion-ordered dict).
            self._filters.pop(next(iter(self._filters)))
        self._filters[key] = filt
        return filt

    def __call__(self, payload: bytes, chain: CertificateChain) -> Set[bytes]:
        """The SuppressionHandler protocol: fingerprints to omit.

        The whole verification path is queried in one ``contains_batch``
        call; ``lookups``/``hits`` still count item-by-item so Table 2 /
        Fig. 5 counters are unchanged by the batching.
        """
        filt = self._filter_for(payload)
        if filt is None:
            return set()
        fingerprints = list(chain.ica_fingerprints())
        self.lookups += len(fingerprints)
        suppressed = set()
        for fp, hit in zip(fingerprints, filt.contains_batch(fingerprints)):
            if hit:
                self.hits += 1
                suppressed.add(fp)
        reg = obs.registry()
        if reg is not None:
            reg.inc("core.suppressor.lookups", len(fingerprints))
            reg.inc("core.suppressor.hits", len(suppressed))
        return suppressed
