"""Adaptive, per-peer targeted filter construction — the paper's stated
future work ("utilize targeted advertisement of specific ICAs to specific
peers through adaptive filter construction", §7).

Instead of one universal filter over the whole ICA cache, the client keeps
a small observation history per peer (which ICAs that peer's chains used)
and advertises a *targeted* filter containing only those ICAs plus an
optional hot-set backstop. Benefits measured by the ablation benchmark:

* much smaller extension payloads for repeat peers (a peer rarely needs
  more than a handful of ICAs);
* a lower effective false-positive exposure, because fewer unknown-ICA
  lookups hit a smaller filter;
* the §6 privacy improvement: the advertised set no longer reveals the
  client's full browsing-derived ICA history to every server.

The first contact with an unknown peer falls back to the universal filter
(or to no extension, the conservative privacy choice).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.amq import FilterParams, canonical_params
from repro.amq.serialization import filter_class_for_name
from repro.core.cache import ICACache
from repro.core.extension import build_extension_payload
from repro.core.suppression import ClientSuppressor
from repro.errors import ConfigurationError
from repro.pki.chain import CertificateChain


@dataclass
class PeerHistory:
    """ICA fingerprints observed in a peer's chains."""

    fingerprints: Set[bytes] = field(default_factory=set)
    handshakes: int = 0

    def observe(self, chain: CertificateChain) -> None:
        self.handshakes += 1
        self.fingerprints.update(chain.ica_fingerprints())


class AdaptiveSuppressor:
    """Targeted per-peer filter construction over a shared ICA cache.

    Wraps a :class:`ClientSuppressor` (the universal fallback) and adds a
    per-peer observation store. ``extension_payload_for(peer)`` returns:

    * a targeted filter when the peer has history (tiny, precise);
    * the universal payload on first contact when ``fallback_universal``;
    * ``None`` (no extension) otherwise — the privacy-conservative mode
      §6 suggests for unknown servers.
    """

    def __init__(
        self,
        universal: ClientSuppressor,
        filter_kind: str = "vacuum",
        fpp: float = 1e-4,
        load_factor: float = 0.9,
        fallback_universal: bool = True,
        min_capacity: int = 8,
        seed: int = 0,
    ) -> None:
        if min_capacity < 1:
            raise ConfigurationError(
                f"min_capacity must be >= 1, got {min_capacity}"
            )
        self.universal = universal
        self.filter_kind = filter_kind
        self.fpp = fpp
        self.load_factor = load_factor
        self.fallback_universal = fallback_universal
        self.min_capacity = min_capacity
        self.seed = seed
        self._peers: Dict[str, PeerHistory] = {}
        self._payloads: Dict[str, bytes] = {}
        # Track cache evictions (expiry/revocation sweeps) so targeted
        # filters stop advertising ICAs the client no longer holds.
        universal.cache.subscribe(on_remove_batch=self._on_cache_removals)

    # -- observation -------------------------------------------------------------

    def observe(self, peer: str, chain: CertificateChain) -> None:
        """Record a completed handshake's chain for this peer (also feeds
        the shared cache so path completion keeps working)."""
        history = self._peers.setdefault(peer, PeerHistory())
        before = len(history.fingerprints)
        history.observe(chain)
        self.universal.learn_from(chain)
        if len(history.fingerprints) != before:
            self._payloads.pop(peer, None)  # targeted payload is stale

    def history_for(self, peer: str) -> Optional[PeerHistory]:
        return self._peers.get(peer)

    def _on_cache_removals(self, certs) -> None:
        dropped = {cert.fingerprint() for cert in certs}
        for peer, history in self._peers.items():
            if history.fingerprints & dropped:
                history.fingerprints -= dropped
                self._payloads.pop(peer, None)

    # -- advertisement --------------------------------------------------------------

    def extension_payload_for(self, peer: str) -> Optional[bytes]:
        history = self._peers.get(peer)
        if history is None:
            if self.fallback_universal:
                return self.universal.extension_payload()
            return None
        if not history.fingerprints:
            # Known peer whose chains carry no ICAs: nothing to suppress,
            # so the extension is pure overhead (and a privacy signal) —
            # omit it.
            return None
        cached = self._payloads.get(peer)
        if cached is not None:
            return cached
        payload = build_extension_payload(self._build_targeted(history))
        self._payloads[peer] = payload
        return payload

    def _build_targeted(self, history: PeerHistory):
        capacity = max(self.min_capacity, len(history.fingerprints))
        params = canonical_params(
            FilterParams(
                capacity=capacity,
                fpp=self.fpp,
                load_factor=self.load_factor,
                seed=self.seed,
            )
        )
        cls = filter_class_for_name(self.filter_kind)
        return cls.build_from_fingerprints(params, history.fingerprints)

    def client_config(
        self,
        trust_store,
        hostname: str,
        kem_name: str = "x25519",
        at_time: int = 0,
        revocation=None,
        seed: int = 0,
    ):
        """Like ClientSuppressor.client_config, but with the targeted
        payload for this peer."""
        from repro.tls.client import ClientConfig

        return ClientConfig(
            trust_store=trust_store,
            kem_name=kem_name,
            hostname=hostname,
            at_time=at_time,
            ica_filter_payload=self.extension_payload_for(hostname),
            issuer_lookup=self.universal.cache.lookup_issuer,
            revocation=revocation,
            seed=seed,
        )

    # -- reporting ---------------------------------------------------------------

    def payload_sizes(self) -> Dict[str, int]:
        """Advertised payload size per known peer (for the ablation)."""
        return {
            peer: len(self.extension_payload_for(peer) or b"")
            for peer in self._peers
        }

    def known_peers(self) -> List[str]:
        return sorted(self._peers)
