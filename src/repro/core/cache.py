"""Client-side ICA certificate cache.

The set *S* of Fig. 2: "the client maintains a list of known intermediate
certificates (e.g., in a separate cache)". Entries arrive from a preload
list (Mozilla-style) and from ICAs observed in completed handshakes, and
leave on expiry or revocation. The cache exposes the two views the rest
of the pipeline needs: fingerprints (filter items) and subject-name lookup
(path completion).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import CertificateError
from repro.pki.certificate import Certificate
from repro.pki.chain import CertificateChain
from repro.pki.store import IntermediatePreload


class ICACache:
    """Known-intermediate store with change notification.

    ``on_add``/``on_remove`` callbacks let the
    :class:`~repro.core.manager.FilterManager` mirror every mutation into
    the live AMQ filter, which is what makes the paper's "dynamic updates"
    requirement (§4.2) concrete.
    """

    def __init__(self) -> None:
        self._by_fingerprint: Dict[bytes, Certificate] = {}
        self._by_subject: Dict[str, Certificate] = {}
        self._add_listeners: List[Callable[[Certificate], None]] = []
        self._remove_listeners: List[Callable[[Certificate], None]] = []

    # -- listeners -----------------------------------------------------------

    def subscribe(
        self,
        on_add: Optional[Callable[[Certificate], None]] = None,
        on_remove: Optional[Callable[[Certificate], None]] = None,
    ) -> None:
        if on_add is not None:
            self._add_listeners.append(on_add)
        if on_remove is not None:
            self._remove_listeners.append(on_remove)

    # -- mutation ------------------------------------------------------------

    def add(self, cert: Certificate) -> bool:
        """Add an ICA; returns False when already present."""
        if not cert.is_ca or cert.is_self_signed:
            raise CertificateError(
                f"ICA cache accepts intermediate CA certificates only, "
                f"got {cert.subject!r}"
            )
        fp = cert.fingerprint()
        if fp in self._by_fingerprint:
            return False
        self._by_fingerprint[fp] = cert
        self._by_subject[cert.subject] = cert
        for listener in self._add_listeners:
            listener(cert)
        return True

    def remove(self, cert: Certificate) -> bool:
        fp = cert.fingerprint()
        stored = self._by_fingerprint.pop(fp, None)
        if stored is None:
            return False
        if self._by_subject.get(stored.subject) is stored:
            del self._by_subject[stored.subject]
        for listener in self._remove_listeners:
            listener(stored)
        return True

    def load_preload(self, preload: IntermediatePreload) -> int:
        """Seed from a preload list; returns how many were new."""
        return sum(self.add(cert) for cert in preload.certificates())

    def observe_chain(self, chain: CertificateChain) -> int:
        """Learn the ICAs seen in a completed handshake; returns how many
        were new (the organic growth path of the cache)."""
        return sum(self.add(ica) for ica in chain.intermediates)

    def sweep_expired(self, at_time: int) -> int:
        """Remove expired entries; returns how many were dropped."""
        stale = [
            cert
            for cert in self._by_fingerprint.values()
            if not cert.valid_at(at_time)
        ]
        for cert in stale:
            self.remove(cert)
        return len(stale)

    def apply_revocations(self, revocation) -> int:
        """Remove revoked entries; returns how many were dropped."""
        revoked = [
            cert
            for cert in self._by_fingerprint.values()
            if revocation.is_revoked(cert)
        ]
        for cert in revoked:
            self.remove(cert)
        return len(revoked)

    # -- queries ------------------------------------------------------------

    def lookup_issuer(self, subject_name: str) -> Optional[Certificate]:
        """Issuer lookup for path completion (Fig. 2 client pipeline)."""
        return self._by_subject.get(subject_name)

    def fingerprints(self) -> List[bytes]:
        return list(self._by_fingerprint.keys())

    def certificates(self) -> List[Certificate]:
        return list(self._by_fingerprint.values())

    def __contains__(self, cert: Certificate) -> bool:
        return cert.fingerprint() in self._by_fingerprint

    def __len__(self) -> int:
        return len(self._by_fingerprint)
