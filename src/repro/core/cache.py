"""Client-side ICA certificate cache.

The set *S* of Fig. 2: "the client maintains a list of known intermediate
certificates (e.g., in a separate cache)". Entries arrive from a preload
list (Mozilla-style) and from ICAs observed in completed handshakes, and
leave on expiry or revocation. The cache exposes the two views the rest
of the pipeline needs: fingerprints (filter items) and subject-name lookup
(path completion).

Cross-signed intermediates are first-class: the Web PKI routinely holds
several distinct certificates for one subject/key (a CA re-anchored under
a second root), so the subject index maps each subject to *every* cached
certificate carrying it, keyed by fingerprint in insertion order.
:meth:`lookup_issuer` prefers the most recently added variant — under
churn the newest cross-sign is the one most likely to still be valid —
and removing one variant never makes its siblings unreachable.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import CertificateError
from repro.pki.certificate import Certificate
from repro.pki.chain import CertificateChain
from repro.pki.store import IntermediatePreload


class ICACache:
    """Known-intermediate store with change notification.

    ``on_add``/``on_remove`` callbacks let the
    :class:`~repro.core.manager.FilterManager` mirror every mutation into
    the live AMQ filter, which is what makes the paper's "dynamic updates"
    requirement (§4.2) concrete.
    """

    def __init__(self) -> None:
        self._by_fingerprint: Dict[bytes, Certificate] = {}
        #: subject -> {fingerprint -> cert} in insertion order; one subject
        #: can hold several cross-signed variants.
        self._by_subject: Dict[str, Dict[bytes, Certificate]] = {}
        self._add_listeners: List[Callable[[Certificate], None]] = []
        self._batch_add_listeners: List[Callable[[List[Certificate]], None]] = []
        self._remove_listeners: List[Callable[[Certificate], None]] = []
        self._batch_remove_listeners: List[Callable[[List[Certificate]], None]] = []

    # -- listeners -----------------------------------------------------------

    def subscribe(
        self,
        on_add: Optional[Callable[[Certificate], None]] = None,
        on_remove: Optional[Callable[[Certificate], None]] = None,
        on_add_batch: Optional[Callable[[List[Certificate]], None]] = None,
        on_remove_batch: Optional[Callable[[List[Certificate]], None]] = None,
    ) -> None:
        """Register change listeners.

        ``on_add_batch`` receives the *whole list* of newly-added
        certificates when a bulk mutation (:meth:`add_many`,
        :meth:`load_preload`, :meth:`observe_chain`) lands, letting
        subscribers use the filters' vectorized ``insert_batch`` path; a
        single :meth:`add` delivers a one-element list. ``on_remove_batch``
        mirrors that contract for removals: :meth:`remove_many` (and the
        expiry/revocation sweeps built on it) deliver one list per sweep,
        a single :meth:`remove` a one-element list. A subscriber should
        register either the scalar or the batch form of each direction,
        not both (it would be notified twice).
        """
        if on_add is not None:
            self._add_listeners.append(on_add)
        if on_add_batch is not None:
            self._batch_add_listeners.append(on_add_batch)
        if on_remove is not None:
            self._remove_listeners.append(on_remove)
        if on_remove_batch is not None:
            self._batch_remove_listeners.append(on_remove_batch)

    def _notify_added(self, certs: List[Certificate]) -> None:
        for listener in self._add_listeners:
            for cert in certs:
                listener(cert)
        for batch_listener in self._batch_add_listeners:
            batch_listener(certs)

    def _notify_removed(self, certs: List[Certificate]) -> None:
        for listener in self._remove_listeners:
            for cert in certs:
                listener(cert)
        for batch_listener in self._batch_remove_listeners:
            batch_listener(certs)

    # -- mutation ------------------------------------------------------------

    def _validate(self, cert: Certificate) -> None:
        if not cert.is_ca or cert.is_self_signed:
            raise CertificateError(
                f"ICA cache accepts intermediate CA certificates only, "
                f"got {cert.subject!r}"
            )

    def _index(self, cert: Certificate) -> bool:
        """Index one already-validated ICA; False when already present."""
        fp = cert.fingerprint()
        if fp in self._by_fingerprint:
            return False
        self._by_fingerprint[fp] = cert
        self._by_subject.setdefault(cert.subject, {})[fp] = cert
        return True

    def _store(self, cert: Certificate) -> bool:
        """Validate + index one ICA; returns False when already present."""
        self._validate(cert)
        return self._index(cert)

    def add(self, cert: Certificate) -> bool:
        """Add an ICA; returns False when already present."""
        if not self._store(cert):
            return False
        self._notify_added([cert])
        return True

    def add_many(self, certs: Iterable[Certificate]) -> int:
        """Bulk add; returns how many were new. Listeners see the new
        certificates as one batch (one filter ``insert_batch``).

        All-or-nothing: the whole batch is validated before anything is
        indexed, so a :class:`~repro.errors.CertificateError` on any item
        leaves the cache untouched and listeners silent — the cache and
        the mirrored filter can never diverge on a failed bulk add.
        """
        batch = list(certs)
        for cert in batch:
            self._validate(cert)
        added = [cert for cert in batch if self._index(cert)]
        if added:
            self._notify_added(added)
        return len(added)

    def _unindex(self, cert: Certificate) -> Optional[Certificate]:
        fp = cert.fingerprint()
        stored = self._by_fingerprint.pop(fp, None)
        if stored is None:
            return None
        variants = self._by_subject.get(stored.subject)
        if variants is not None:
            variants.pop(fp, None)
            if not variants:
                del self._by_subject[stored.subject]
        return stored

    def remove(self, cert: Certificate) -> bool:
        stored = self._unindex(cert)
        if stored is None:
            return False
        self._notify_removed([stored])
        return True

    def remove_many(self, certs: Iterable[Certificate]) -> int:
        """Bulk remove; returns how many were present. Listeners see the
        removed certificates as one batch (one filter ``delete_batch``,
        or a single rebuild for structures without deletion)."""
        removed = []
        for cert in certs:
            stored = self._unindex(cert)
            if stored is not None:
                removed.append(stored)
        if removed:
            self._notify_removed(removed)
        return len(removed)

    def load_preload(self, preload: IntermediatePreload) -> int:
        """Seed from a preload list; returns how many were new."""
        return self.add_many(preload.certificates())

    def observe_chain(self, chain: CertificateChain) -> int:
        """Learn the ICAs seen in a completed handshake; returns how many
        were new (the organic growth path of the cache)."""
        return self.add_many(chain.intermediates)

    def sweep_expired(self, at_time: int) -> int:
        """Remove expired entries (one batched mutation); returns how
        many were dropped."""
        stale = [
            cert
            for cert in self._by_fingerprint.values()
            if not cert.valid_at(at_time)
        ]
        return self.remove_many(stale)

    def apply_revocations(self, revocation) -> int:
        """Remove revoked entries (one batched mutation); returns how
        many were dropped."""
        revoked = [
            cert
            for cert in self._by_fingerprint.values()
            if revocation.is_revoked(cert)
        ]
        return self.remove_many(revoked)

    # -- queries ------------------------------------------------------------

    def lookup_issuer(self, subject_name: str) -> Optional[Certificate]:
        """Issuer lookup for path completion (Fig. 2 client pipeline).

        When several cross-signed variants share the subject, the most
        recently added one wins (deterministic; under churn the newest
        cross-sign is the likeliest to still be valid). Use
        :meth:`lookup_issuers` for every variant.
        """
        variants = self._by_subject.get(subject_name)
        if not variants:
            return None
        return next(reversed(variants.values()))

    def lookup_issuers(self, subject_name: str) -> List[Certificate]:
        """Every cached certificate for ``subject_name`` (cross-signed
        variants included), oldest first."""
        variants = self._by_subject.get(subject_name)
        return list(variants.values()) if variants else []

    def fingerprints(self) -> List[bytes]:
        return list(self._by_fingerprint.keys())

    def certificates(self) -> List[Certificate]:
        return list(self._by_fingerprint.values())

    def __contains__(self, cert: Certificate) -> bool:
        return cert.fingerprint() in self._by_fingerprint

    def __len__(self) -> int:
        return len(self._by_fingerprint)
