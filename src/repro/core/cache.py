"""Client-side ICA certificate cache.

The set *S* of Fig. 2: "the client maintains a list of known intermediate
certificates (e.g., in a separate cache)". Entries arrive from a preload
list (Mozilla-style) and from ICAs observed in completed handshakes, and
leave on expiry or revocation. The cache exposes the two views the rest
of the pipeline needs: fingerprints (filter items) and subject-name lookup
(path completion).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import CertificateError
from repro.pki.certificate import Certificate
from repro.pki.chain import CertificateChain
from repro.pki.store import IntermediatePreload


class ICACache:
    """Known-intermediate store with change notification.

    ``on_add``/``on_remove`` callbacks let the
    :class:`~repro.core.manager.FilterManager` mirror every mutation into
    the live AMQ filter, which is what makes the paper's "dynamic updates"
    requirement (§4.2) concrete.
    """

    def __init__(self) -> None:
        self._by_fingerprint: Dict[bytes, Certificate] = {}
        self._by_subject: Dict[str, Certificate] = {}
        self._add_listeners: List[Callable[[Certificate], None]] = []
        self._batch_add_listeners: List[Callable[[List[Certificate]], None]] = []
        self._remove_listeners: List[Callable[[Certificate], None]] = []

    # -- listeners -----------------------------------------------------------

    def subscribe(
        self,
        on_add: Optional[Callable[[Certificate], None]] = None,
        on_remove: Optional[Callable[[Certificate], None]] = None,
        on_add_batch: Optional[Callable[[List[Certificate]], None]] = None,
    ) -> None:
        """Register change listeners.

        ``on_add_batch`` receives the *whole list* of newly-added
        certificates when a bulk mutation (:meth:`add_many`,
        :meth:`load_preload`, :meth:`observe_chain`) lands, letting
        subscribers use the filters' vectorized ``insert_batch`` path; a
        single :meth:`add` delivers a one-element list. A subscriber
        should register either ``on_add`` or ``on_add_batch``, not both
        (it would be notified twice).
        """
        if on_add is not None:
            self._add_listeners.append(on_add)
        if on_add_batch is not None:
            self._batch_add_listeners.append(on_add_batch)
        if on_remove is not None:
            self._remove_listeners.append(on_remove)

    def _notify_added(self, certs: List[Certificate]) -> None:
        for listener in self._add_listeners:
            for cert in certs:
                listener(cert)
        for batch_listener in self._batch_add_listeners:
            batch_listener(certs)

    # -- mutation ------------------------------------------------------------

    def _store(self, cert: Certificate) -> bool:
        """Validate + index one ICA; returns False when already present."""
        if not cert.is_ca or cert.is_self_signed:
            raise CertificateError(
                f"ICA cache accepts intermediate CA certificates only, "
                f"got {cert.subject!r}"
            )
        fp = cert.fingerprint()
        if fp in self._by_fingerprint:
            return False
        self._by_fingerprint[fp] = cert
        self._by_subject[cert.subject] = cert
        return True

    def add(self, cert: Certificate) -> bool:
        """Add an ICA; returns False when already present."""
        if not self._store(cert):
            return False
        self._notify_added([cert])
        return True

    def add_many(self, certs: Iterable[Certificate]) -> int:
        """Bulk add; returns how many were new. Listeners see the new
        certificates as one batch (one filter ``insert_batch``)."""
        added = [cert for cert in certs if self._store(cert)]
        if added:
            self._notify_added(added)
        return len(added)

    def remove(self, cert: Certificate) -> bool:
        fp = cert.fingerprint()
        stored = self._by_fingerprint.pop(fp, None)
        if stored is None:
            return False
        if self._by_subject.get(stored.subject) is stored:
            del self._by_subject[stored.subject]
        for listener in self._remove_listeners:
            listener(stored)
        return True

    def load_preload(self, preload: IntermediatePreload) -> int:
        """Seed from a preload list; returns how many were new."""
        return self.add_many(preload.certificates())

    def observe_chain(self, chain: CertificateChain) -> int:
        """Learn the ICAs seen in a completed handshake; returns how many
        were new (the organic growth path of the cache)."""
        return self.add_many(chain.intermediates)

    def sweep_expired(self, at_time: int) -> int:
        """Remove expired entries; returns how many were dropped."""
        stale = [
            cert
            for cert in self._by_fingerprint.values()
            if not cert.valid_at(at_time)
        ]
        for cert in stale:
            self.remove(cert)
        return len(stale)

    def apply_revocations(self, revocation) -> int:
        """Remove revoked entries; returns how many were dropped."""
        revoked = [
            cert
            for cert in self._by_fingerprint.values()
            if revocation.is_revoked(cert)
        ]
        for cert in revoked:
            self.remove(cert)
        return len(revoked)

    # -- queries ------------------------------------------------------------

    def lookup_issuer(self, subject_name: str) -> Optional[Certificate]:
        """Issuer lookup for path completion (Fig. 2 client pipeline)."""
        return self._by_subject.get(subject_name)

    def fingerprints(self) -> List[bytes]:
        return list(self._by_fingerprint.keys())

    def certificates(self) -> List[Certificate]:
        return list(self._by_fingerprint.values())

    def __contains__(self, cert: Certificate) -> bool:
        return cert.fingerprint() in self._by_fingerprint

    def __len__(self) -> int:
        return len(self._by_fingerprint)
