"""Filter capacity/FPP planning against the ClientHello budget (§5.2).

The paper's sizing argument: a ClientHello must stay within the peer's
initial congestion window (10 MSS ~ 14.6 KB), and with a PQ KEM key share
the message base already costs ~900 bytes, leaving "~550 bytes" for the
filter. ``plan_filter`` turns (ICA count, FPP, budget) into concrete,
wire-canonical :class:`~repro.amq.base.FilterParams` for a chosen
structure, refusing plans that cannot fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Type

from repro import obs
from repro.amq import (
    AMQFilter,
    FilterParams,
    canonical_params,
    max_capacity_within,
    size_bytes_for,
)
from repro.amq.serialization import (
    deserialize_filter,
    filter_class_for_name,
    serialize_filter,
    serialized_overhead_bytes,
)
from repro.errors import ConfigurationError
from repro.pki.algorithms import get_kem_algorithm
from repro.runtime import artifacts

#: The paper's §5.2 figure for space left in a PQ ClientHello.
DEFAULT_FILTER_BUDGET_BYTES = 550

#: Measured base size of our ClientHello (handshake header through
#: extensions) excluding the KEM public key, the SNI hostname bytes and
#: the filter extension. Kept as a constant so planning needs no TLS
#: round trip; asserted against the real encoder in the test suite.
_CLIENTHELLO_BASE_WITHOUT_KEY_AND_NAME = 153

#: TLS extension framing for the filter payload (type + length).
_EXTENSION_FRAMING_BYTES = 4


def clienthello_base_bytes(kem_name: str, hostname: str = "example.com") -> int:
    """ClientHello size (handshake layer) before the filter extension."""
    kem = get_kem_algorithm(kem_name)
    return (
        _CLIENTHELLO_BASE_WITHOUT_KEY_AND_NAME
        + len(hostname)
        + kem.public_key_bytes
    )


def clienthello_filter_budget(kem_name: str, initcwnd_bytes: int = 14600) -> int:
    """Bytes available for the filter extension, following §5.2.

    With a PQ KEM the paper lands on ~550 bytes under the default 10-MSS
    window; we scale that figure linearly with a non-default window (the
    initcwnd discussion in §5.2). With X25519 the whole remaining window
    minus a 2 KB reserve is available (~12 KB, matching the paper).
    """
    kem = get_kem_algorithm(kem_name)
    if kem.post_quantum:
        return max(0, round(DEFAULT_FILTER_BUDGET_BYTES * initcwnd_bytes / 14600))
    return max(0, initcwnd_bytes - clienthello_base_bytes(kem_name) - 2000)


@dataclass(frozen=True)
class FilterPlan:
    """A validated filter configuration that fits its byte budget."""

    filter_kind: str
    params: FilterParams
    budget_bytes: int
    predicted_payload_bytes: int

    @property
    def predicted_extension_bytes(self) -> int:
        """Payload + AMQ wire header + TLS extension framing."""
        return (
            self.predicted_payload_bytes
            + serialized_overhead_bytes()
            + _EXTENSION_FRAMING_BYTES
        )

    def build(self, items: Iterable[bytes] = ()) -> AMQFilter:
        """Instantiate the filter and insert ``items``.

        Builds are memoized by (kind, capacity, fpp, load factor, seed)
        plus a digest of the item sequence: every simulator construction
        over the same hot-ICA set rehydrates one serialized image instead
        of re-inserting item by item. Each call still returns a fresh,
        independently mutable filter.
        """
        import hashlib

        items = [bytes(item) for item in items]
        digest = hashlib.sha256()
        for item in items:
            digest.update(len(item).to_bytes(4, "big"))
            digest.update(item)
        key = (
            self.filter_kind,
            self.params.capacity,
            self.params.fpp,
            self.params.load_factor,
            self.params.seed,
            digest.digest(),
        )
        cached = artifacts.FILTER_BUILDS.get(key)
        if cached is None:
            cls = filter_class_for_name(self.filter_kind)
            # Capture the build's metric deltas so cache hits can replay
            # them: amq.* counters stay a pure function of build() calls,
            # not of which process happened to populate this cache first.
            with obs.scoped() as scope:
                filt = cls.build_from_fingerprints(self.params, items)
            cached = (serialize_filter(filt), scope.snapshot())
            artifacts.FILTER_BUILDS.put(key, cached)
        image, build_metrics = cached
        obs.merge(build_metrics)
        # Rehydrate on the cold path too: a freshly built cuckoo filter has
        # consumed eviction-rng draws that a rehydrated copy has not, so
        # returning the original would make the first build of a given key
        # behave differently from every later one.
        filt = deserialize_filter(image)
        # Static backends buffer items and reconstruct on mutation; the
        # wire image cannot carry the buffer, so reattach it — without
        # this, a rehydrated xor filter's first mirrored insert would
        # rebuild from an empty buffer and drop the preloaded set.
        filt.attach_source_items(items)
        return filt


def memoized_build(
    filter_kind: str, params: FilterParams, items: Iterable[bytes]
) -> AMQFilter:
    """Build a filter through the ``FILTER_BUILDS`` artifact cache.

    The :class:`~repro.amq.delta.FilterBuilder` hook for delta
    publishers/appliers: versioned builds route through the same
    content-keyed memoization (and obs-snapshot replay) as
    :meth:`FilterPlan.build`, so the churn engines rehydrate each
    version's image once per process instead of rebuilding per client
    generation — and because the cache round-trips through the wire
    format, a memoized build stays byte-identical to a cold one.
    """
    predicted = size_bytes_for(
        filter_kind, params.capacity, params.fpp, params.load_factor
    )
    plan = FilterPlan(
        filter_kind=filter_kind,
        params=params,
        budget_bytes=predicted,
        predicted_payload_bytes=predicted,
    )
    return plan.build(items)


def plan_filter(
    num_icas: int,
    filter_kind: str = "cuckoo",
    fpp: float = 1e-3,
    load_factor: float = 0.9,
    budget_bytes: Optional[int] = DEFAULT_FILTER_BUDGET_BYTES,
    seed: int = 0,
    headroom: float = 1.0,
) -> FilterPlan:
    """Plan a filter for ``num_icas`` intermediates.

    ``headroom`` scales provisioned capacity above the current ICA count
    so dynamic insertions don't immediately overflow (e.g. 1.2 leaves 20%
    slack). Raises ConfigurationError when the result exceeds
    ``budget_bytes`` (pass None to skip the budget check).
    """
    if num_icas < 1:
        raise ConfigurationError(f"num_icas must be >= 1, got {num_icas}")
    if headroom < 1.0:
        raise ConfigurationError(f"headroom must be >= 1.0, got {headroom}")
    capacity = max(1, round(num_icas * headroom))
    params = canonical_params(
        FilterParams(capacity=capacity, fpp=fpp, load_factor=load_factor, seed=seed)
    )
    predicted = size_bytes_for(filter_kind, capacity, params.fpp, params.load_factor)
    if budget_bytes is not None and predicted > budget_bytes:
        achievable = max_capacity_within(
            filter_kind, budget_bytes, params.fpp, params.load_factor
        )
        raise ConfigurationError(
            f"{filter_kind} filter for {capacity} ICAs at fpp={fpp:g} needs "
            f"{predicted} bytes, exceeding the {budget_bytes}-byte budget "
            f"(max capacity within budget: {achievable}); lower the capacity, "
            f"raise the fpp, or choose another structure"
        )
    return FilterPlan(
        filter_kind=filter_kind,
        params=params,
        budget_bytes=budget_bytes if budget_bytes is not None else predicted,
        predicted_payload_bytes=predicted,
    )
