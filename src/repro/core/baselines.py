"""Competing ICA-omission designs from the paper's related work (§2).

Implemented so the ablation benchmarks can compare the AMQ approach
against the alternatives the paper argues around:

``CTLSDictionary`` — the Compact-TLS proposal (draft-rescorla-tls-ctls
§5.1.3): client and server share a *pre-established certificate
dictionary* and exchange short identifiers. Perfectly compact on the
wire, but the dictionary must be distributed and kept in sync out of
band; the class meters exactly that synchronization traffic, the cost the
paper says "would require a separate dedicated synchronization mechanism".

``PeerCacheFlags`` — Kampanakis & Kallitsis's caching design: the client
remembers, per server, whether it already holds that server's ICAs and
sets a suppression flag on reconnect. One bit on the wire, but the client
must "retain a specific mapping between ICA certs and the respective
server/peer", and a first contact never suppresses; the class meters the
per-peer state and the cold-contact misses.

Both implement the same duck-typed surface the ablation uses: an
``advertisement_bytes(peer)`` cost, a ``suppressed(peer, chain)``
decision, and bookkeeping counters.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import ConfigurationError
from repro.pki.certificate import Certificate
from repro.pki.chain import CertificateChain

#: Dictionary identifiers are short hashes (cTLS uses compact ids).
DICTIONARY_ID_BYTES = 4


@dataclass
class SyncLedger:
    """Counts out-of-band synchronization traffic for dictionary-style
    designs (the hidden cost the paper's filter approach avoids)."""

    full_transfers: int = 0
    delta_transfers: int = 0
    bytes_sent: int = 0

    def record_full(self, nbytes: int) -> None:
        self.full_transfers += 1
        self.bytes_sent += nbytes

    def record_delta(self, nbytes: int) -> None:
        self.delta_transfers += 1
        self.bytes_sent += nbytes


class CTLSDictionary:
    """A shared certificate dictionary with explicit synchronization.

    The *server-side* holds the authoritative dictionary (certificate
    fingerprint -> short id). Clients must download it (full on first
    sync, deltas thereafter); a client whose dictionary epoch is stale
    cannot suppress until it re-syncs.
    """

    def __init__(self, sync_overhead_bytes: int = 64) -> None:
        self._ids: Dict[bytes, int] = {}
        self._members: List[bytes] = []
        self._epoch = 0
        self._sync_overhead = sync_overhead_bytes
        self.ledger = SyncLedger()

    # -- authority side -------------------------------------------------------

    def publish(self, certificates: Iterable[Certificate]) -> int:
        """Add certificates to the dictionary; bumps the epoch when
        anything changed. Returns the number of new entries."""
        added = 0
        for cert in certificates:
            fp = cert.fingerprint()
            if fp not in self._ids:
                self._ids[fp] = len(self._members)
                self._members.append(fp)
                added += 1
        if added:
            self._epoch += 1
        return added

    def revoke(self, certificate: Certificate) -> bool:
        """Remove an entry; every client must re-sync before suppressing
        against the new epoch (the update problem the paper notes)."""
        fp = certificate.fingerprint()
        if fp not in self._ids:
            return False
        del self._ids[fp]
        self._members.remove(fp)
        self._ids = {f: i for i, f in enumerate(self._members)}
        self._epoch += 1
        return True

    @property
    def epoch(self) -> int:
        return self._epoch

    def __len__(self) -> int:
        return len(self._members)

    # -- client side ------------------------------------------------------------

    def full_sync_bytes(self) -> int:
        """Cost of a from-scratch dictionary download: every member's
        fingerprint plus framing."""
        return self._sync_overhead + 32 * len(self._members)

    def delta_sync_bytes(self, changed_entries: int) -> int:
        return self._sync_overhead + 32 * max(0, changed_entries)


class CTLSClient:
    """A client participating in a cTLS-dictionary deployment."""

    def __init__(self, dictionary: CTLSDictionary) -> None:
        self._dictionary = dictionary
        self._known: Set[bytes] = set()
        self._epoch = -1
        self.stale_handshakes = 0

    @property
    def synced(self) -> bool:
        return self._epoch == self._dictionary.epoch

    def sync(self) -> int:
        """Bring the local dictionary up to date; returns bytes
        transferred out of band (and meters them on the ledger)."""
        if self.synced:
            return 0
        current = set(self._dictionary._ids)
        if self._epoch < 0:
            nbytes = self._dictionary.full_sync_bytes()
            self._dictionary.ledger.record_full(nbytes)
        else:
            changed = len(current ^ self._known)
            nbytes = self._dictionary.delta_sync_bytes(changed)
            self._dictionary.ledger.record_delta(nbytes)
        self._known = current
        self._epoch = self._dictionary.epoch
        return nbytes

    def advertisement_bytes(self, peer: str) -> int:
        """On-the-wire cost per handshake: the dictionary epoch tag."""
        return DICTIONARY_ID_BYTES

    def suppressed(self, peer: str, chain: CertificateChain) -> Set[bytes]:
        """ICAs the server may omit: only when the client is in sync and
        every ICA is a dictionary member (cTLS substitutes ids, which we
        model as full omission of the cert body)."""
        if not self.synced:
            self.stale_handshakes += 1
            return set()
        fps = set(chain.ica_fingerprints())
        return fps if fps <= self._known else fps & self._known


class PeerCacheFlags:
    """Kampanakis-Kallitsis per-peer ICA caching with a suppression flag."""

    def __init__(self) -> None:
        # peer -> fingerprints of that peer's ICAs, as last observed.
        self._peer_icas: Dict[str, Set[bytes]] = {}
        self.cold_contacts = 0
        self.flag_hits = 0

    def observe(self, peer: str, chain: CertificateChain) -> None:
        self._peer_icas[peer] = set(chain.ica_fingerprints())

    def advertisement_bytes(self, peer: str) -> int:
        """One flag bit, byte-aligned on the wire."""
        return 1

    def suppressed(self, peer: str, chain: CertificateChain) -> Set[bytes]:
        known = self._peer_icas.get(peer)
        if known is None:
            self.cold_contacts += 1
            return set()
        fps = set(chain.ica_fingerprints())
        if fps <= known:
            self.flag_hits += 1
            return fps
        # Chain rotated under the peer: the stale flag would have caused a
        # failed handshake; model the conservative non-suppression.
        return set()

    def state_bytes(self) -> int:
        """Client memory: the per-peer mapping the paper criticizes the
        design for needing (peer name + 32 B per ICA fingerprint)."""
        return sum(
            len(peer.encode()) + 32 * len(fps)
            for peer, fps in self._peer_icas.items()
        )

    def peers_tracked(self) -> int:
        return len(self._peer_icas)
