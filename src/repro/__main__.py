"""``python -m repro`` — regenerate the paper's artifacts from the CLI."""

import sys

from repro.cli import main

sys.exit(main())
