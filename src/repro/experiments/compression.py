"""Certificate compression (RFC 8879) vs ICA suppression.

The deployed alternative to suppression is compressing the Certificate
message. This experiment measures both (and their composition) across
signature algorithms, exhibiting the asymmetry that motivates the paper's
approach in the PQ era: compression exploits redundancy, and post-quantum
keys/signatures have none — while suppression removes whole certificates
regardless of their entropy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.tables import format_table
from repro.tls.compression import CompressionAccounting, compare_mechanisms
from repro.webmodel.session_sim import _micro_credential


@dataclass(frozen=True)
class CompressionRow:
    algorithm: str
    num_icas: int
    accounting: CompressionAccounting


def compression_comparison(
    algorithms: Sequence[str] = (
        "ecdsa-p256",
        "rsa-2048",
        "falcon-512",
        "dilithium3",
        "sphincs-128f",
    ),
    num_icas: int = 2,
) -> List[CompressionRow]:
    rows = []
    for algorithm in algorithms:
        credential, _ = _micro_credential(algorithm, num_icas)
        rows.append(
            CompressionRow(
                algorithm=algorithm,
                num_icas=num_icas,
                accounting=compare_mechanisms(credential.chain),
            )
        )
    return rows


def format_compression(rows: Sequence[CompressionRow]) -> str:
    table_rows = []
    for row in rows:
        a = row.accounting
        table_rows.append(
            [
                row.algorithm,
                a.plain_bytes,
                a.compressed_bytes,
                f"{100 * (1 - a.compression_ratio):.0f}%",
                a.suppressed_bytes,
                f"{100 * (1 - a.suppression_ratio):.0f}%",
                a.suppressed_compressed_bytes,
                f"{100 * (1 - a.combined_ratio):.0f}%",
            ]
        )
    return format_table(
        ["algorithm", "plain B", "zlib B", "zlib save",
         "suppressed B", "sup save", "both B", "both save"],
        table_rows,
        title=(
            f"RFC 8879 compression vs ICA suppression — Certificate message, "
            f"{rows[0].num_icas}-ICA chain"
        ),
    )
