"""QUIC vs TCP: where the PQ penalty bites and what suppression recovers.

Extends the paper's TCP-centric evaluation with the QUIC amplification
analysis its related work ([23]) performs: QUIC's 3x pre-validation limit
stalls PQ server flights at ~3.6 KB — a quarter of TCP's initcwnd — so
suppression pays earlier and more often.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.tables import format_table
from repro.netsim.quic import QUICConfig, quic_flights_needed
from repro.netsim.tcp import TCPConfig, flights_needed
from repro.webmodel.session_sim import flight_sizes


@dataclass(frozen=True)
class TransportRow:
    algorithm: str
    num_icas: int
    tcp_flights_full: int
    tcp_flights_suppressed: int
    quic_flights_full: int
    quic_flights_suppressed: int

    @property
    def tcp_gain(self) -> int:
        return self.tcp_flights_full - self.tcp_flights_suppressed

    @property
    def quic_gain(self) -> int:
        return self.quic_flights_full - self.quic_flights_suppressed


def transport_comparison(
    algorithms: Sequence[str] = (
        "rsa-2048",
        "falcon-512",
        "dilithium3",
        "dilithium5",
        "sphincs-128f",
    ),
    kem: str = "ntru-hps-509",
    num_icas: int = 2,
    filter_bytes: int = 452,
    tcp: TCPConfig = TCPConfig(),
    quic: QUICConfig = QUICConfig(),
) -> List[TransportRow]:
    """Flight counts per transport, with and without suppression. The
    suppressed ClientHello carries ``filter_bytes`` of extension, which in
    QUIC also enlarges the amplification budget."""
    rows = []
    for alg in algorithms:
        ch, full_flight = flight_sizes(alg, kem, num_icas, True)
        _, sup_flight = flight_sizes(alg, kem, 0, True)
        ch_with_filter = ch + filter_bytes + 4
        rows.append(
            TransportRow(
                algorithm=alg,
                num_icas=num_icas,
                tcp_flights_full=flights_needed(full_flight, tcp),
                tcp_flights_suppressed=flights_needed(sup_flight, tcp),
                quic_flights_full=quic_flights_needed(full_flight, ch, quic),
                quic_flights_suppressed=quic_flights_needed(
                    sup_flight, ch_with_filter, quic
                ),
            )
        )
    return rows


def format_transport_comparison(rows: Sequence[TransportRow]) -> str:
    table_rows = [
        [
            r.algorithm,
            r.tcp_flights_full,
            r.tcp_flights_suppressed,
            r.tcp_gain,
            r.quic_flights_full,
            r.quic_flights_suppressed,
            r.quic_gain,
        ]
        for r in rows
    ]
    return format_table(
        ["algorithm", "TCP full", "TCP sup", "TCP gain",
         "QUIC full", "QUIC sup", "QUIC gain"],
        table_rows,
        title=(
            f"QUIC amplification vs TCP initcwnd — server-flight round "
            f"trips ({rows[0].num_icas}-ICA chain)"
        ),
    )
