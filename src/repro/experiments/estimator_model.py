"""The §4.2 expected-duration model, quantified.

The paper closes its design section with the expected handshake time
``(1 - eps) * d_c + eps * d_PQ``. This experiment grounds d_c / d_PQ in
the flight model per algorithm and tabulates the expected duration and
speedup across FPP targets and RTTs — the design-space view a deployment
would tune against (it also exhibits why eps is a second-order knob: at
any plausible FPP the expectation is within a hair of d_c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.tables import format_table
from repro.core.estimator import HandshakeTimeModel, crypto_cpu_seconds
from repro.pki.algorithms import get_signature_algorithm
from repro.webmodel.session_sim import flight_sizes


@dataclass(frozen=True)
class ExpectedDurationRow:
    algorithm: str
    rtt_s: float
    eps: float
    d_suppressed_ms: float
    d_full_ms: float
    expected_ms: float
    speedup: float


def expected_duration_table(
    algorithms: Sequence[str] = ("dilithium3", "dilithium5", "sphincs-128f"),
    rtts_s: Sequence[float] = (0.02, 0.05, 0.15),
    epsilons: Sequence[float] = (1e-4, 1e-3, 1e-2),
    kem: str = "ntru-hps-509",
    num_icas: int = 2,
) -> List[ExpectedDurationRow]:
    rows = []
    for name in algorithms:
        alg = get_signature_algorithm(name)
        ch, full = flight_sizes(name, kem, num_icas, True)
        _, suppressed = flight_sizes(name, kem, 0, True)
        model = HandshakeTimeModel(
            client_hello_bytes=ch,
            suppressed_flight_bytes=suppressed,
            full_flight_bytes=full,
            crypto_cpu_s=crypto_cpu_seconds(alg, kem),
        )
        for rtt in rtts_s:
            for eps in epsilons:
                rows.append(
                    ExpectedDurationRow(
                        algorithm=name,
                        rtt_s=rtt,
                        eps=eps,
                        d_suppressed_ms=1000 * model.d_suppressed(rtt),
                        d_full_ms=1000 * model.d_full(rtt),
                        expected_ms=1000 * model.expected(rtt, eps),
                        speedup=model.speedup(rtt, eps),
                    )
                )
    return rows


def format_expected_durations(rows: Sequence[ExpectedDurationRow]) -> str:
    table_rows = [
        [
            r.algorithm,
            f"{1000 * r.rtt_s:.0f}",
            f"{r.eps:g}",
            f"{r.d_suppressed_ms:.0f}",
            f"{r.d_full_ms:.0f}",
            f"{r.expected_ms:.1f}",
            f"{r.speedup:.2f}x",
        ]
        for r in rows
    ]
    return format_table(
        ["algorithm", "rtt ms", "eps", "d_c ms", "d_PQ ms", "expected ms",
         "speedup"],
        table_rows,
        title="§4.2 expected handshake duration — (1-eps)d_c + eps(d_c+d_PQ)",
    )
