"""Table 2 — certificate chain data in the (synthetic) Tranco Top-10K.

Runs the monthly crawl simulation and reports measured rows next to the
paper's observed rows, which double as the generator's calibration
targets — agreement here validates that the Fig.-5 workload sits on a
population with the right chain statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.webmodel.chains import TABLE2_MONTHS
from repro.webmodel.crawler import CrawlStats, crawl_top_domains
from repro.webmodel.population import ICAPopulation, PopulationConfig


@dataclass(frozen=True)
class Table2Row:
    measured: CrawlStats
    paper_unique_icas: int
    paper_shares: "tuple[float, ...]"


def compute_table2(
    population: Optional[ICAPopulation] = None,
    num_domains: int = 10_000,
    seed: int = 0,
) -> List[Table2Row]:
    population = population or ICAPopulation(PopulationConfig(seed=seed))
    rows = []
    for i, (month, mix) in enumerate(TABLE2_MONTHS.items()):
        stats = crawl_top_domains(
            population, month, month_index=i, num_domains=num_domains
        )
        rows.append(
            Table2Row(
                measured=stats,
                paper_unique_icas=mix.unique_icas,
                paper_shares=mix.probabilities(),
            )
        )
    return rows


def format_table2(rows: Sequence[Table2Row]) -> str:
    header = [
        "month",
        "uniq (paper)",
        "servers",
        "0 ICA %",
        "1 ICA %",
        "2 ICA %",
        "3 ICA %",
        ">3 ICA %",
    ]
    out = []
    for row in rows:
        m = row.measured
        cells = [
            m.month,
            f"{m.unique_icas} ({row.paper_unique_icas})",
            f"{m.total_servers // 1000}K",
        ]
        for depth in range(5):
            cells.append(
                f"{100 * m.share(depth):.1f} ({100 * row.paper_shares[depth]:.1f})"
            )
        out.append(cells)
    return format_table(
        header, out, title="Table 2 — chain statistics, measured (paper)"
    )
