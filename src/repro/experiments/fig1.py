"""Figure 1 — the PQ TLS 1.3 handshake flow.

The paper's Fig. 1 is a message-sequence diagram; the measurable content
is the per-message byte breakdown and where the server flight crosses TCP
flight boundaries. This driver runs a real handshake per algorithm and
prints exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.tables import format_table
from repro.netsim.tcp import TCPConfig, flights_needed
from repro.tls.messages import split_handshake_stream
from repro.tls.record import wire_size
from repro.webmodel.session_sim import _micro_credential, flight_sizes
from repro.pki.keys import KeyPair
from repro.pki.algorithms import get_signature_algorithm
from repro.pki.ocsp import OCSPStaple
from repro.pki.sct import SignedCertificateTimestamp
from repro.tls.client import ClientConfig, TLSClient
from repro.tls.server import ServerConfig, TLSServer

_NAMES = {
    1: "ClientHello",
    2: "ServerHello",
    8: "EncryptedExtensions",
    11: "Certificate",
    15: "CertificateVerify",
    20: "Finished",
}


@dataclass(frozen=True)
class MessageRecord:
    direction: str  # "C->S" or "S->C"
    name: str
    handshake_bytes: int


@dataclass(frozen=True)
class HandshakeFlow:
    algorithm: str
    kem: str
    num_icas: int
    messages: List[MessageRecord]
    server_flight_bytes: int
    client_hello_bytes: int
    server_flight_rtts: int

    @property
    def total_bytes(self) -> int:
        return sum(m.handshake_bytes for m in self.messages)


def trace_handshake(
    algorithm: str = "dilithium3",
    kem: str = "ntru-hps-509",
    num_icas: int = 2,
    staples: bool = True,
    tcp: TCPConfig = TCPConfig(),
) -> HandshakeFlow:
    """Run one handshake and record every message with its size."""
    credential, store = _micro_credential(algorithm, num_icas)
    responder = KeyPair(get_signature_algorithm(algorithm), 0xE5D)
    ocsp = None
    scts: List[SignedCertificateTimestamp] = []
    if staples:
        ocsp = OCSPStaple.create(credential.chain.leaf, responder, produced_at=1)
        scts = [
            SignedCertificateTimestamp.create(
                credential.chain.leaf, responder, bytes([i]) * 32, 7
            )
            for i in (1, 2)
        ]
    client = TLSClient(
        ClientConfig(store, kem_name=kem, hostname="flight-probe.example", at_time=10)
    )
    server = TLSServer(
        ServerConfig(credential=credential, ocsp_staple=ocsp, scts=scts)
    )
    hello = client.create_client_hello()
    flight = server.process_client_hello(hello)
    result = client.process_server_flight(flight.flight)
    if not result.complete:
        raise RuntimeError(f"trace handshake failed: {result.failure_reason}")
    server.process_client_finished(result.client_finished)

    messages = [MessageRecord("C->S", "ClientHello", len(hello))]
    for msg_type, body in split_handshake_stream(flight.flight):
        messages.append(
            MessageRecord("S->C", _NAMES.get(msg_type, f"type {msg_type}"), len(body) + 4)
        )
    messages.append(
        MessageRecord("C->S", "Finished", len(result.client_finished))
    )
    return HandshakeFlow(
        algorithm=algorithm,
        kem=kem,
        num_icas=num_icas,
        messages=messages,
        server_flight_bytes=len(flight.flight),
        client_hello_bytes=len(hello),
        server_flight_rtts=flights_needed(wire_size(len(flight.flight)), tcp),
    )


def compute_flows(
    algorithms: Sequence[str] = (
        "ecdsa-p256",
        "rsa-2048",
        "falcon-512",
        "dilithium3",
        "dilithium5",
        "sphincs-128f",
    ),
    kem: str = "ntru-hps-509",
    num_icas: int = 2,
) -> List[HandshakeFlow]:
    return [trace_handshake(alg, kem, num_icas) for alg in algorithms]


def format_flow(flow: HandshakeFlow) -> str:
    rows = [
        [m.direction, m.name, m.handshake_bytes] for m in flow.messages
    ]
    rows.append(["", "server flight total", flow.server_flight_bytes])
    rows.append(["", "server flight round trips", flow.server_flight_rtts])
    return format_table(
        ["dir", "message", "bytes"],
        rows,
        title=(
            f"Fig. 1 flow — {flow.algorithm} / {flow.kem} / "
            f"{flow.num_icas} ICAs"
        ),
    )


def format_flow_summary(flows: Sequence[HandshakeFlow]) -> str:
    rows = [
        [
            f.algorithm,
            f.client_hello_bytes,
            f.server_flight_bytes,
            f.server_flight_rtts,
        ]
        for f in flows
    ]
    return format_table(
        ["algorithm", "ClientHello B", "server flight B", "flight RTTs"],
        rows,
        title="Fig. 1 — handshake flights per algorithm",
    )
