"""Ablations for the design choices DESIGN.md calls out.

* **initcwnd sensitivity** (§5.2's discussion): how the initial window
  changes both the PQ penalty and the value of suppression — large
  windows remove the round-trip penalty entirely, at which point the
  initiator should omit the extension.
* **filter choice**: end-to-end browsing-session reduction, extension
  size and false positives per AMQ structure (incl. the Bloom baseline
  that cannot delete).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.core.estimator import crypto_cpu_seconds
from repro.netsim.tcp import TCPConfig, extra_flights, handshake_duration_s
from repro.pki.algorithms import get_signature_algorithm
from repro.webmodel.population import ICAPopulation, PopulationConfig
from repro.webmodel.session_sim import (
    BrowsingSessionSimulator,
    SessionConfig,
    flight_sizes,
)


# ---------------------------------------------------------------------------
# initcwnd ablation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InitcwndRow:
    algorithm: str
    initcwnd_segments: int
    full_extra_rtts: int
    suppressed_extra_rtts: int
    handshake_gain_ms_at_40ms: float

    @property
    def suppression_useful(self) -> bool:
        return self.full_extra_rtts > self.suppressed_extra_rtts


def initcwnd_sweep(
    algorithms: Sequence[str] = ("dilithium3", "dilithium5", "sphincs-128f"),
    windows: Sequence[int] = (4, 10, 20, 32, 64),
    kem: str = "ntru-hps-509",
    num_icas: int = 2,
    rtt_s: float = 0.04,
) -> List[InitcwndRow]:
    rows = []
    for alg_name in algorithms:
        alg = get_signature_algorithm(alg_name)
        cpu = crypto_cpu_seconds(alg, kem)
        ch, full_flight = flight_sizes(alg_name, kem, num_icas, True)
        _, sup_flight = flight_sizes(alg_name, kem, 0, True)
        for window in windows:
            tcp = TCPConfig(initcwnd_segments=window)
            full = handshake_duration_s(ch, full_flight, rtt_s, tcp, cpu)
            sup = handshake_duration_s(ch, sup_flight, rtt_s, tcp, cpu)
            rows.append(
                InitcwndRow(
                    algorithm=alg_name,
                    initcwnd_segments=window,
                    full_extra_rtts=extra_flights(full_flight, tcp),
                    suppressed_extra_rtts=extra_flights(sup_flight, tcp),
                    handshake_gain_ms_at_40ms=1000 * (full - sup),
                )
            )
    return rows


def format_initcwnd(rows: Sequence[InitcwndRow]) -> str:
    table_rows = [
        [
            r.algorithm,
            r.initcwnd_segments,
            r.full_extra_rtts,
            r.suppressed_extra_rtts,
            f"{r.handshake_gain_ms_at_40ms:.0f}",
            "yes" if r.suppression_useful else "no",
        ]
        for r in rows
    ]
    return format_table(
        ["algorithm", "initcwnd", "extra RTTs full", "extra RTTs sup",
         "gain ms @40ms RTT", "suppression useful"],
        table_rows,
        title="Ablation — initcwnd sensitivity (2-ICA chain)",
    )


# ---------------------------------------------------------------------------
# Filter-choice ablation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FilterChoiceRow:
    filter_kind: str
    extension_bytes: int
    reduction: float
    known_rate: float
    false_positives: float
    lookup_us: float
    effective_fpp: float


def filter_choice(
    kinds: Sequence[str] = (
        "bloom", "counting-bloom", "cuckoo", "vacuum", "quotient", "xor"
    ),
    num_domains: int = 60,
    runs: int = 2,
    seed: int = 3,
    population: Optional[ICAPopulation] = None,
    jobs: Optional[int] = 1,
) -> List[FilterChoiceRow]:
    """End-to-end browsing impact per structure (one shared population so
    the workload is identical across rows). ``jobs`` shards each
    structure's runs across processes (``None``/``0`` = all cores)."""
    population = population or ICAPopulation(PopulationConfig(seed=seed))
    rows = []
    for kind in kinds:
        sim = BrowsingSessionSimulator(
            SessionConfig(
                num_domains=num_domains, filter_kind=kind, seed=seed
            ),
            population=population,
        )
        results = sim.run_many(runs, jobs=jobs)
        rows.append(
            FilterChoiceRow(
                filter_kind=kind,
                extension_bytes=results[0].filter_payload_bytes,
                reduction=sum(r.ica_reduction_ratio() for r in results) / runs,
                known_rate=sum(r.known_ica_rate for r in results) / runs,
                false_positives=sum(r.false_positives for r in results) / runs,
                lookup_us=results[0].filter_lookup_seconds * 1e6,
                effective_fpp=sim.suppressor.filter.effective_fpp(),
            )
        )
    return rows


def format_filter_choice(rows: Sequence[FilterChoiceRow]) -> str:
    table_rows = [
        [
            r.filter_kind,
            r.extension_bytes,
            f"{100 * r.reduction:.1f}%",
            f"{100 * r.known_rate:.1f}%",
            f"{r.false_positives:.1f}",
            f"{r.lookup_us:.1f}",
            f"{r.effective_fpp:.2g}",
        ]
        for r in rows
    ]
    return format_table(
        ["filter", "payload B", "ICA reduction", "known rate", "FPs/run",
         "lookup us", "eff. FPP"],
        table_rows,
        title="Ablation — AMQ structure choice in the Fig. 5 pipeline",
    )
