"""One-shot reproduction report.

``generate_report`` regenerates every artifact at a configurable scale
and assembles a single markdown document — the machine-written companion
to the hand-annotated EXPERIMENTS.md. Used by ``python -m repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro._version import __version__


@dataclass(frozen=True)
class ReportScale:
    """How big to run the simulations (defaults stay under a minute)."""

    runs: int = 3
    domains: int = 100
    crawl_domains: int = 4000
    throughput_items: int = 4000


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def generate_report(
    scale: ReportScale = ReportScale(),
    population=None,
) -> str:
    """Regenerate all artifacts and return the markdown report."""
    from repro.experiments import (
        ablations,
        baselines,
        compression,
        fig1,
        fig3,
        fig4,
        fig5,
        mixed_chains,
        quic,
        table1,
        table2,
    )
    from repro.experiments.estimator_model import (
        expected_duration_table,
        format_expected_durations,
    )
    from repro.experiments.warmup import format_warmup, warmup_curves
    from repro.webmodel.nonweb import compare_environments, format_environments
    from repro.webmodel.population import ICAPopulation, PopulationConfig
    from repro.webmodel.session_sim import BrowsingSessionSimulator, SessionConfig

    population = population or ICAPopulation(PopulationConfig(seed=1))
    sections: List[str] = [
        "# Reproduction report",
        "",
        f"repro {__version__} — scale: {scale.runs} runs x {scale.domains} "
        f"domains, {scale.crawl_domains}-domain crawls.",
        "",
    ]

    sections.append(_section(
        "Table 1 — authentication data",
        table1.format_table1(table1.compute_table1()),
    ))
    sections.append(_section(
        "Table 2 — chain statistics",
        table2.format_table2(
            table2.compute_table2(
                population=population, num_domains=scale.crawl_domains
            )
        ),
    ))
    sections.append(_section(
        "Figure 1 — handshake flights",
        fig1.format_flow_summary(fig1.compute_flows()),
    ))
    sections.append(_section(
        "Figure 3 — filter feasibility",
        "\n\n".join(
            [
                fig3.format_load_factor_sweep(fig3.load_factor_sweep()),
                fig3.format_max_load(fig3.measured_max_load(trials=2)),
                fig3.format_throughput(
                    fig3.throughput(num_items=scale.throughput_items)
                ),
                fig3.format_capacity_sweep(
                    fig3.capacity_sweep(), fig3.budget_capacities()
                ),
            ]
        ),
    ))
    sections.append(_section(
        "Figure 4 — extension size vs FPP",
        fig4.format_fpp_sweep(fig4.fpp_sweep()),
    ))

    simulator = BrowsingSessionSimulator(
        SessionConfig(seed=1, num_domains=scale.domains), population=population
    )
    results = simulator.run_many(scale.runs)
    sections.append(_section(
        "Figure 5 — browsing impact",
        "\n\n".join(
            [
                fig5.format_data_volume(fig5.data_volume(results)),
                fig5.format_latency_models(fig5.latency_models()),
                fig5.format_ttfb(fig5.ttfb_scenarios(results)),
            ]
        ),
    ))
    sections.append(_section(
        "Ablations and extensions",
        "\n\n".join(
            [
                ablations.format_initcwnd(ablations.initcwnd_sweep()),
                baselines.format_baselines(
                    baselines.compare_designs(
                        num_domains=scale.domains, population=population
                    )
                ),
                quic.format_transport_comparison(quic.transport_comparison()),
                compression.format_compression(
                    compression.compression_comparison()
                ),
                mixed_chains.format_mixed_chains(
                    mixed_chains.mixed_chain_comparison()
                ),
                format_warmup(
                    warmup_curves(
                        num_destinations=5 * scale.domains,
                        checkpoint_every=scale.domains,
                        population=population,
                    )
                ),
                format_expected_durations(expected_duration_table()),
                format_environments(compare_environments(sample_handshakes=20)),
            ]
        ),
    ))
    return "\n".join(sections)
