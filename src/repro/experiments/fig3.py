"""Figure 3 — AMQ filter feasibility.

Three panels (§5.2):

* **left** — filter size vs target load factor at capacity 245 and FPP
  0.1% ("load factors should remain above 75%"; the paper settles on 0.9);
* **center** — insert/query throughput per structure ("millions of
  lookups in seconds" in C; Python magnitudes are lower, the *ordering*
  is the reproducible shape);
* **right** — filter size vs represented ICs at FPP 0.1%, LF 0.9, against
  the 550-byte ClientHello budget ("below 550 bytes ... over 300 ICs").
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.amq import FilterParams, canonical_params, max_capacity_within
from repro.amq.serialization import filter_class_for_name
from repro.analysis.tables import format_table
from repro.core.filter_config import DEFAULT_FILTER_BUDGET_BYTES

PAPER_CAPACITY = 245
PAPER_FPP = 1e-3
PAPER_LOAD_FACTOR = 0.9
DYNAMIC_KINDS = ("cuckoo", "vacuum", "quotient")


# ---------------------------------------------------------------------------
# Left panel: size vs load factor
# ---------------------------------------------------------------------------


def load_factor_sweep(
    kinds: Sequence[str] = DYNAMIC_KINDS,
    load_factors: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.95),
    capacity: int = PAPER_CAPACITY,
    fpp: float = PAPER_FPP,
) -> Dict[str, List[Tuple[float, int]]]:
    """{kind: [(load_factor, size_bytes), ...]}."""
    out: Dict[str, List[Tuple[float, int]]] = {}
    for kind in kinds:
        cls = filter_class_for_name(kind)
        series = []
        for lf in load_factors:
            params = canonical_params(
                FilterParams(capacity=capacity, fpp=fpp, load_factor=lf)
            )
            series.append((lf, cls(params).size_in_bytes()))
        out[kind] = series
    return out


def format_load_factor_sweep(sweep: Dict[str, List[Tuple[float, int]]]) -> str:
    lfs = [lf for lf, _ in next(iter(sweep.values()))]
    rows = [
        [kind, *(str(size) for _, size in series)] for kind, series in sweep.items()
    ]
    return format_table(
        ["structure"] + [f"lf={lf}" for lf in lfs],
        rows,
        title=(
            f"Fig. 3-left — size (bytes) vs load factor "
            f"(capacity {PAPER_CAPACITY}, FPP {PAPER_FPP:.1%})"
        ),
    )


def measured_max_load(
    kinds: Sequence[str] = DYNAMIC_KINDS,
    capacity: int = PAPER_CAPACITY,
    fpp: float = PAPER_FPP,
    trials: int = 5,
) -> Dict[str, float]:
    """Empirical achievable load factor: fill each structure (sized at
    its most compact, load-factor-1 geometry) until the first insertion
    failure and report the mean occupancy reached. The paper's
    feasibility bar is 0.75; all three candidates clear 0.9."""
    import random

    from repro.errors import FilterFullError

    out: Dict[str, float] = {}
    for kind in kinds:
        cls = filter_class_for_name(kind)
        achieved = []
        for trial in range(trials):
            params = canonical_params(
                FilterParams(
                    capacity=capacity, fpp=fpp, load_factor=1.0, seed=trial
                )
            )
            filt = cls(params)
            rng = random.Random(1000 + trial)
            try:
                while True:
                    filt.insert(rng.getrandbits(192).to_bytes(24, "big"))
            except FilterFullError:
                pass
            achieved.append(len(filt) / filt.slot_count())
        out[kind] = sum(achieved) / trials
    return out


def format_max_load(loads: Dict[str, float]) -> str:
    rows = [[kind, f"{100 * lf:.1f}%"] for kind, lf in loads.items()]
    return format_table(
        ["structure", "achieved load factor"],
        rows,
        title="Fig. 3-left companion — measured fill at first insert failure",
    )


# ---------------------------------------------------------------------------
# Center panel: throughput
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ThroughputResult:
    kind: str
    insert_ops_per_s: float
    query_ops_per_s: float
    delete_ops_per_s: float


def throughput(
    kinds: Sequence[str] = DYNAMIC_KINDS,
    num_items: int = 5_000,
    seed: int = 7,
) -> List[ThroughputResult]:
    """Measured insert/query/delete throughput at the paper's operating
    point (0.9 target load)."""
    import random

    rng = random.Random(seed)
    items = [rng.getrandbits(256).to_bytes(32, "big") for _ in range(num_items)]
    probes = [rng.getrandbits(256).to_bytes(32, "big") for _ in range(num_items)]
    results = []
    for kind in kinds:
        cls = filter_class_for_name(kind)
        params = canonical_params(
            FilterParams(
                capacity=num_items, fpp=PAPER_FPP, load_factor=PAPER_LOAD_FACTOR,
                seed=seed,
            )
        )
        filt = cls(params)
        t0 = time.perf_counter()
        filt.insert_all(items)
        t_insert = time.perf_counter() - t0
        t0 = time.perf_counter()
        for probe in probes:
            filt.contains(probe)
        for item in items:
            filt.contains(item)
        t_query = time.perf_counter() - t0
        t0 = time.perf_counter()
        for item in items:
            filt.delete(item)
        t_delete = time.perf_counter() - t0
        results.append(
            ThroughputResult(
                kind=kind,
                insert_ops_per_s=num_items / t_insert,
                query_ops_per_s=2 * num_items / t_query,
                delete_ops_per_s=num_items / t_delete,
            )
        )
    return results


@dataclass(frozen=True)
class BatchThroughputResult:
    """Scalar-loop vs ``*_batch`` throughput for one structure."""

    kind: str
    batch_size: int
    scalar_insert_ops_per_s: float
    batch_insert_ops_per_s: float
    scalar_query_ops_per_s: float
    batch_query_ops_per_s: float

    @property
    def insert_speedup(self) -> float:
        return self.batch_insert_ops_per_s / self.scalar_insert_ops_per_s

    @property
    def query_speedup(self) -> float:
        return self.batch_query_ops_per_s / self.scalar_query_ops_per_s


BATCH_KINDS = ("bloom",) + DYNAMIC_KINDS + ("xor",)


def batch_throughput(
    kinds: Sequence[str] = BATCH_KINDS,
    num_items: int = 10_000,
    seed: int = 7,
) -> List[BatchThroughputResult]:
    """Scalar-vs-batch ops/sec at the paper's operating point.

    Measures the same workload twice per structure: a per-item
    insert/contains loop against ``insert_batch``/``contains_batch`` on a
    twin filter. The query probe set is half absent, half present items,
    as in :func:`throughput`.
    """
    import random

    rng = random.Random(seed)
    items = [rng.getrandbits(256).to_bytes(32, "big") for _ in range(num_items)]
    probes = [rng.getrandbits(256).to_bytes(32, "big") for _ in range(num_items)]
    mix = probes[: num_items // 2] + items[: num_items // 2]
    results = []
    for kind in kinds:
        cls = filter_class_for_name(kind)
        params = canonical_params(
            FilterParams(
                capacity=num_items, fpp=PAPER_FPP, load_factor=PAPER_LOAD_FACTOR,
                seed=seed,
            )
        )
        scalar_filt = cls(params)
        t0 = time.perf_counter()
        for item in items:
            scalar_filt.insert(item)
        t_scalar_insert = time.perf_counter() - t0
        if kind == "xor":
            scalar_filt.contains(items[0])  # fold the one-off build out
        t0 = time.perf_counter()
        for probe in mix:
            scalar_filt.contains(probe)
        t_scalar_query = time.perf_counter() - t0

        batch_filt = cls(params)
        t0 = time.perf_counter()
        batch_filt.insert_batch(items)
        t_batch_insert = time.perf_counter() - t0
        if kind == "xor":
            batch_filt.contains(items[0])
        t0 = time.perf_counter()
        batch_filt.contains_batch(mix)
        t_batch_query = time.perf_counter() - t0
        results.append(
            BatchThroughputResult(
                kind=kind,
                batch_size=num_items,
                scalar_insert_ops_per_s=num_items / t_scalar_insert,
                batch_insert_ops_per_s=num_items / t_batch_insert,
                scalar_query_ops_per_s=len(mix) / t_scalar_query,
                batch_query_ops_per_s=len(mix) / t_batch_query,
            )
        )
    return results


@dataclass(frozen=True)
class BulkBuildThroughputResult:
    """Scalar loop vs batch insert vs ``build_from_fingerprints`` for one
    structure, plus the query throughput of the finished filter."""

    kind: str
    num_items: int
    scalar_build_ops_per_s: float
    batch_build_ops_per_s: float
    bulk_build_ops_per_s: float
    scalar_query_ops_per_s: float
    batch_query_ops_per_s: float

    @property
    def batch_build_speedup(self) -> float:
        return self.batch_build_ops_per_s / self.scalar_build_ops_per_s

    @property
    def bulk_build_speedup(self) -> float:
        return self.bulk_build_ops_per_s / self.scalar_build_ops_per_s

    @property
    def batch_query_speedup(self) -> float:
        return self.batch_query_ops_per_s / self.scalar_query_ops_per_s


def bulk_build_throughput(
    kinds: Sequence[str] = BATCH_KINDS,
    num_items: int = 1 << 16,
    seed: int = 7,
) -> List[BulkBuildThroughputResult]:
    """Build-path throughput at 2^16 scale: the scalar insert loop every
    session construction used to pay, the in-place ``insert_batch``
    kernels, and the full ``build_from_fingerprints`` producer path
    (construction + batch insert, as the filter plans and manager
    rebuilds run it). A single ``contains`` inside each timed build
    window forces the xor filter's deferred peel construction so its
    build cost is not hidden in the first query; for the other backends
    the extra probe is noise. The xor scalar arm runs its construction
    under :func:`repro.amq.peel.scalar_spec_mode`, so "scalar build"
    means the full list-backed specification construction for every
    family alike (the other backends' scalar arms pay per-item scalar
    placement the same way) while the batch/bulk arms exercise the
    array-native peel engine. Queries run against the bulk-built filter
    over the usual half-absent/half-present probe mix.
    """
    import random
    from contextlib import nullcontext

    from repro.amq.peel import scalar_spec_mode

    rng = random.Random(seed)
    items = [rng.getrandbits(256).to_bytes(32, "big") for _ in range(num_items)]
    probes = [rng.getrandbits(256).to_bytes(32, "big") for _ in range(num_items)]
    mix = probes[: num_items // 2] + items[: num_items // 2]
    results = []
    for kind in kinds:
        cls = filter_class_for_name(kind)
        params = canonical_params(
            FilterParams(
                capacity=num_items, fpp=PAPER_FPP, load_factor=PAPER_LOAD_FACTOR,
                seed=seed,
            )
        )
        spec_mode = scalar_spec_mode() if kind == "xor" else nullcontext()
        t0 = time.perf_counter()
        with spec_mode:
            scalar_filt = cls(params)
            for item in items:
                scalar_filt.insert(item)
            scalar_filt.contains(items[0])
        t_scalar_build = time.perf_counter() - t0

        t0 = time.perf_counter()
        batch_filt = cls(params)
        batch_filt.insert_batch(items)
        batch_filt.contains(items[0])
        t_batch_build = time.perf_counter() - t0

        t0 = time.perf_counter()
        bulk_filt = cls.build_from_fingerprints(params, items)
        bulk_filt.contains(items[0])
        t_bulk_build = time.perf_counter() - t0

        t0 = time.perf_counter()
        for probe in mix:
            bulk_filt.contains(probe)
        t_scalar_query = time.perf_counter() - t0
        t0 = time.perf_counter()
        bulk_filt.contains_batch(mix)
        t_batch_query = time.perf_counter() - t0
        results.append(
            BulkBuildThroughputResult(
                kind=kind,
                num_items=num_items,
                scalar_build_ops_per_s=num_items / t_scalar_build,
                batch_build_ops_per_s=num_items / t_batch_build,
                bulk_build_ops_per_s=num_items / t_bulk_build,
                scalar_query_ops_per_s=len(mix) / t_scalar_query,
                batch_query_ops_per_s=len(mix) / t_batch_query,
            )
        )
    return results


def format_bulk_build_throughput(
    results: Sequence[BulkBuildThroughputResult],
) -> str:
    rows = [
        [
            r.kind,
            f"{r.scalar_build_ops_per_s:,.0f}",
            f"{r.batch_build_ops_per_s:,.0f}",
            f"{r.bulk_build_ops_per_s:,.0f}",
            f"{r.bulk_build_speedup:.1f}x",
            f"{r.batch_query_ops_per_s:,.0f}",
            f"{r.batch_query_speedup:.1f}x",
        ]
        for r in results
    ]
    n = results[0].num_items if results else 0
    return format_table(
        [
            "structure",
            "scalar build/s",
            "insert_batch/s",
            "bulk build/s",
            "build speedup",
            "contains_batch/s",
            "query speedup",
        ],
        rows,
        title=f"Fig. 3-center companion — bulk-build path ({n:,} items)",
    )


def format_batch_throughput(results: Sequence[BatchThroughputResult]) -> str:
    rows = [
        [
            r.kind,
            f"{r.scalar_insert_ops_per_s:,.0f}",
            f"{r.batch_insert_ops_per_s:,.0f}",
            f"{r.insert_speedup:.1f}x",
            f"{r.scalar_query_ops_per_s:,.0f}",
            f"{r.batch_query_ops_per_s:,.0f}",
            f"{r.query_speedup:.1f}x",
        ]
        for r in results
    ]
    batch = results[0].batch_size if results else 0
    return format_table(
        [
            "structure",
            "insert/s",
            "insert_batch/s",
            "speedup",
            "query/s",
            "contains_batch/s",
            "speedup",
        ],
        rows,
        title=f"Fig. 3-center companion — scalar vs batch ops/sec ({batch:,}-item batches)",
    )


def format_throughput(results: Sequence[ThroughputResult]) -> str:
    rows = [
        [
            r.kind,
            f"{r.insert_ops_per_s:,.0f}",
            f"{r.query_ops_per_s:,.0f}",
            f"{r.delete_ops_per_s:,.0f}",
        ]
        for r in results
    ]
    return format_table(
        ["structure", "insert/s", "query/s", "delete/s"],
        rows,
        title="Fig. 3-center — throughput (pure Python; see EXPERIMENTS.md)",
    )


# ---------------------------------------------------------------------------
# Right panel: size vs capacity
# ---------------------------------------------------------------------------


def capacity_sweep(
    kinds: Sequence[str] = DYNAMIC_KINDS,
    capacities: Sequence[int] = (50, 100, 150, 200, 245, 300, 400, 700, 1000, 1400),
    fpp: float = PAPER_FPP,
    load_factor: float = PAPER_LOAD_FACTOR,
) -> Dict[str, List[Tuple[int, int]]]:
    """{kind: [(capacity, size_bytes), ...]}."""
    out: Dict[str, List[Tuple[int, int]]] = {}
    for kind in kinds:
        cls = filter_class_for_name(kind)
        series = []
        for capacity in capacities:
            params = canonical_params(
                FilterParams(capacity=capacity, fpp=fpp, load_factor=load_factor)
            )
            series.append((capacity, cls(params).size_in_bytes()))
        out[kind] = series
    return out


def budget_capacities(
    kinds: Sequence[str] = DYNAMIC_KINDS,
    budget_bytes: int = DEFAULT_FILTER_BUDGET_BYTES,
    fpp: float = PAPER_FPP,
    load_factor: float = PAPER_LOAD_FACTOR,
) -> Dict[str, int]:
    """Max ICs each structure holds within the ClientHello budget."""
    return {
        kind: max_capacity_within(kind, budget_bytes, fpp, load_factor)
        for kind in kinds
    }


def format_capacity_sweep(
    sweep: Dict[str, List[Tuple[int, int]]],
    budgets: Dict[str, int],
) -> str:
    capacities = [c for c, _ in next(iter(sweep.values()))]
    rows = []
    for kind, series in sweep.items():
        rows.append(
            [kind, *(str(size) for _, size in series), str(budgets.get(kind, "-"))]
        )
    return format_table(
        ["structure"]
        + [f"n={c}" for c in capacities]
        + [f"max ICs @{DEFAULT_FILTER_BUDGET_BYTES}B"],
        rows,
        title=(
            "Fig. 3-right — size (bytes) vs represented ICs "
            f"(FPP {PAPER_FPP:.1%}, LF {PAPER_LOAD_FACTOR})"
        ),
    )
