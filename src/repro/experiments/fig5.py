"""Figure 5 — IC-suppression impact estimation.

Three panels driven by the browsing-session simulator (§5.3: 10 runs x
200 domains, cuckoo filter, 0.9 load factor, 0.1% FPP, the June '22 hot
ICA set):

* **left** — ICA data exchanged with/without suppression, measured for
  the baseline PKI and extrapolated to Dilithium III/V and SPHINCS+-128f
  (paper: ~73% reduction; ~15 MB / ~45 MB saved);
* **center** — PQ-authentication latency over RSA-2048 as a function of
  RTT, with the line-of-best-fit latency model;
* **right** — TTFB distributions per scenario (FP doubles the TTFB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis.regression import LinearFit, linear_fit
from repro.analysis.tables import format_table
from repro.core.estimator import crypto_cpu_seconds
from repro.errors import ConfigurationError
from repro.netsim.metrics import Summary, summarize
from repro.netsim.tcp import TCPConfig, handshake_duration_s
from repro.pki.algorithms import get_signature_algorithm
from repro.pki.certificate import DEFAULT_ATTRIBUTE_BYTES
from repro.webmodel.population import ICAPopulation, PopulationConfig
from repro.webmodel.session_sim import (
    BrowsingSessionSimulator,
    SessionConfig,
    SessionResult,
    flight_sizes,
)

PAPER_REDUCTION = 0.73
PAPER_RUNS = 10
PAPER_DOMAINS = 200


# ---------------------------------------------------------------------------
# Shared simulation driver
# ---------------------------------------------------------------------------


def run_sessions(
    runs: int = PAPER_RUNS,
    num_domains: Optional[int] = None,
    config: Optional[SessionConfig] = None,
    population: Optional[ICAPopulation] = None,
    jobs: Optional[int] = 1,
) -> List[SessionResult]:
    """The shared Fig. 5 simulation: ``runs`` browsing sessions.

    ``num_domains`` is a convenience for the default config; combining it
    with an explicit ``config`` whose ``num_domains`` disagrees is a
    conflict and raises (the old behaviour silently rebuilt the config).
    ``jobs`` shards the runs across processes (``None``/``0`` = all
    cores).
    """
    if config is None:
        config = SessionConfig(
            num_domains=PAPER_DOMAINS if num_domains is None else num_domains,
            seed=1,
        )
    elif num_domains is not None and config.num_domains != num_domains:
        raise ConfigurationError(
            f"conflicting session sizes: config.num_domains="
            f"{config.num_domains} but num_domains={num_domains}; pass one "
            "or use dataclasses.replace(config, num_domains=...)"
        )
    simulator = BrowsingSessionSimulator(config, population=population)
    return simulator.run_many(runs, jobs=jobs)


# ---------------------------------------------------------------------------
# Left panel: ICA data volume
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DataVolumeRow:
    algorithm: str
    mb_without: float
    mb_with: float

    @property
    def mb_saved(self) -> float:
        return self.mb_without - self.mb_with

    @property
    def reduction(self) -> float:
        return self.mb_saved / self.mb_without if self.mb_without else 0.0


@dataclass(frozen=True)
class DataVolumeResult:
    rows: List[DataVolumeRow]
    mean_reduction: float
    reduction_ci95: "Tuple[float, float]"
    mean_known_rate: float
    mean_false_positives: float
    mean_unique_destinations: float


def data_volume(
    results: Sequence[SessionResult],
    algorithms: Sequence[str] = (
        "rsa-2048",
        "dilithium3",
        "dilithium5",
        "sphincs-128f",
    ),
) -> DataVolumeResult:
    from repro.analysis.stats import confidence_interval_95

    n = len(results)
    # ICA counts are algorithm-free; per-cert size is result-free. Compute
    # each once instead of re-resolving the algorithm (and re-walking the
    # outcomes) inside the per-result loops.
    total_icas = sum(r.total_icas for r in results)
    sent_icas = sum(
        sum(o.icas_sent_total for o in r.outcomes) for r in results
    )
    rows = []
    for alg in algorithms:
        per_cert = get_signature_algorithm(alg).auth_bytes_per_certificate(
            DEFAULT_ATTRIBUTE_BYTES
        )
        without = per_cert * total_icas / n / 1e6
        with_sup = per_cert * sent_icas / n / 1e6
        rows.append(DataVolumeRow(alg, without, with_sup))
    reductions = [r.ica_reduction_ratio() for r in results]
    ci = (
        confidence_interval_95(reductions)
        if n >= 2
        else (reductions[0], reductions[0])
    )
    volume = DataVolumeResult(
        rows=rows,
        mean_reduction=sum(reductions) / n,
        reduction_ci95=ci,
        mean_known_rate=sum(r.known_ica_rate for r in results) / n,
        mean_false_positives=sum(r.false_positives for r in results) / n,
        mean_unique_destinations=sum(r.unique_destinations for r in results) / n,
    )
    reg = obs.registry()
    if reg is not None:
        for row in volume.rows:
            reg.set_gauge(
                "experiments.fig5.mb_saved",
                row.mb_saved,
                (("algorithm", row.algorithm),),
            )
        reg.set_gauge("experiments.fig5.mean_reduction", volume.mean_reduction)
        reg.set_gauge("experiments.fig5.mean_known_rate", volume.mean_known_rate)
        reg.set_gauge(
            "experiments.fig5.mean_false_positives", volume.mean_false_positives
        )
    return volume


def format_data_volume(result: DataVolumeResult) -> str:
    rows = [
        [
            r.algorithm,
            f"{r.mb_without:.2f}",
            f"{r.mb_with:.2f}",
            f"{r.mb_saved:.2f}",
            f"{100 * r.reduction:.1f}%",
        ]
        for r in result.rows
    ]
    table = format_table(
        ["algorithm", "MB w/o sup", "MB w/ sup", "MB saved", "reduction"],
        rows,
        title="Fig. 5-left — ICA data per browsing session (mean over runs)",
    )
    footer = (
        f"\nmean reduction {100 * result.mean_reduction:.1f}% "
        f"[95% CI {100 * result.reduction_ci95[0]:.1f}-"
        f"{100 * result.reduction_ci95[1]:.1f}] "
        f"(paper ~{100 * PAPER_REDUCTION:.0f}%), known-ICA rate "
        f"{100 * result.mean_known_rate:.1f}% (paper 69-74%), "
        f"false positives/run {result.mean_false_positives:.1f} "
        f"(paper 2.3), unique destinations "
        f"{result.mean_unique_destinations:.0f} (paper ~1950)"
    )
    return table + footer


# ---------------------------------------------------------------------------
# Center panel: PQ latency over RSA-2048 vs RTT, with linear fit
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LatencyModel:
    algorithm: str
    rtts_s: List[float]
    extra_latency_s: List[float]
    fit: LinearFit


def latency_models(
    algorithms: Sequence[str] = ("dilithium5", "sphincs-128f"),
    baseline: str = "rsa-2048",
    kem: str = "ntru-hps-509",
    num_icas: int = 2,
    rtts_s: Sequence[float] = (0.01, 0.02, 0.04, 0.08, 0.12, 0.2, 0.3),
    tcp: TCPConfig = TCPConfig(),
) -> List[LatencyModel]:
    """Extra handshake latency of each PQ algorithm over the baseline as
    a function of RTT, plus the paper's linear-regression model."""
    base_alg = get_signature_algorithm(baseline)
    base_cpu = crypto_cpu_seconds(base_alg, kem)
    ch_b, flight_b = flight_sizes(baseline, kem, num_icas, True)
    models = []
    for name in algorithms:
        alg = get_signature_algorithm(name)
        cpu = crypto_cpu_seconds(alg, kem)
        ch, flight = flight_sizes(name, kem, num_icas, True)
        extras = []
        for rtt in rtts_s:
            d_pq = handshake_duration_s(ch, flight, rtt, tcp, cpu)
            d_base = handshake_duration_s(ch_b, flight_b, rtt, tcp, base_cpu)
            extras.append(d_pq - d_base)
        models.append(
            LatencyModel(
                algorithm=name,
                rtts_s=list(rtts_s),
                extra_latency_s=extras,
                fit=linear_fit(list(rtts_s), extras),
            )
        )
    return models


def format_latency_models(models: Sequence[LatencyModel]) -> str:
    rtts = models[0].rtts_s
    rows = []
    for m in models:
        rows.append(
            [
                m.algorithm,
                *(f"{1000 * e:.0f}" for e in m.extra_latency_s),
                f"{m.fit.slope:.2f}",
                f"{1000 * m.fit.intercept:.1f}",
                f"{m.fit.r_squared:.3f}",
            ]
        )
    return format_table(
        ["algorithm"]
        + [f"rtt={1000 * r:.0f}ms" for r in rtts]
        + ["slope", "icept ms", "R^2"],
        rows,
        title="Fig. 5-center — extra latency over RSA-2048 (ms) and linear fit",
    )


# ---------------------------------------------------------------------------
# Right panel: TTFB distributions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TTFBScenario:
    algorithm: str
    suppressed: bool
    summary: Summary


def ttfb_scenarios(
    results: Sequence[SessionResult],
    algorithms: Sequence[str] = ("rsa-2048", "dilithium5", "sphincs-128f"),
) -> List[TTFBScenario]:
    # Hoist per-scenario constants: the signature algorithm, its CPU cost
    # per KEM, and the TCP model are invariant across results, so resolve
    # them once here rather than inside every ttfb_samples call.
    cpu_by_kem: Dict[Tuple[str, str], float] = {}
    tcp_by_cwnd: Dict[int, TCPConfig] = {}
    scenarios = []
    for alg in algorithms:
        sig_alg = get_signature_algorithm(alg)
        for suppressed in (False, True):
            samples: List[float] = []
            for result in results:
                kem = result.config.kem_name
                cpu = cpu_by_kem.get((alg, kem))
                if cpu is None:
                    cpu = crypto_cpu_seconds(sig_alg, kem)
                    cpu_by_kem[(alg, kem)] = cpu
                cwnd = result.config.initcwnd_segments
                tcp = tcp_by_cwnd.get(cwnd)
                if tcp is None:
                    tcp = TCPConfig(initcwnd_segments=cwnd)
                    tcp_by_cwnd[cwnd] = tcp
                samples.extend(
                    result.ttfb_samples(alg, suppressed, tcp=tcp, cpu=cpu)
                )
            scenarios.append(
                TTFBScenario(alg, suppressed, summarize(samples))
            )
    return scenarios


def format_ttfb(scenarios: Sequence[TTFBScenario]) -> str:
    rows = []
    for s in scenarios:
        rows.append(
            [
                s.algorithm,
                "suppressed" if s.suppressed else "full",
                f"{1000 * s.summary.median:.0f}",
                f"{1000 * s.summary.mean:.0f}",
                f"{1000 * s.summary.p90:.0f}",
                f"{1000 * s.summary.p99:.0f}",
            ]
        )
    return format_table(
        ["algorithm", "scenario", "median ms", "mean ms", "p90 ms", "p99 ms"],
        rows,
        title="Fig. 5-right — TTFB per scenario (all runs pooled)",
    )
