"""Churn experiment: filter-staleness degradation curves.

Sweeps the churn cohort's ``payload_refresh_every`` knob (how stale a
client generation's advertised filter payload may grow relative to the
canonical cache) and reports how the FP-retry rate, suppression rate and
bytes-on-wire respond. Each (staleness level, trial) cell is one full
churn cohort run — a pure function of its config — so cells shard across
worker processes with results element-wise identical to the serial path,
and the JSON document is byte-identical for any ``--jobs`` value.

Two engines resolve the cells: the columnar engine
(:func:`~repro.webmodel.churn_columnar.run_churn_cohort`, the default)
and the scalar per-handshake reference
(:func:`~repro.webmodel.churn_reference.run_churn_cohort_reference`).
They implement one protocol over one set of RNG streams, so the document
is also byte-identical across ``engine`` — the cross-engine ``cmp`` the
CI churn-smoke enforces.

Wire images and probe plans live in content-keyed artifact caches
(:data:`repro.runtime.artifacts.CHURN_IMAGES` /
:data:`~repro.runtime.artifacts.CHURN_PROBES`), so repeated trials and
staleness levels sharing a trajectory prefix rehydrate each other's
builds instead of rebuilding identical filters from scratch; the caches
are shipped to cold workers on the parallel path. Hit rates are
reported out of band (``cache_stats`` is opt-in) because they are a
per-process execution detail, not part of the deterministic document.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.errors import SimulationError
from repro.runtime import artifacts
from repro.runtime.parallel import (
    derive_seed,
    parallel_map,
    resolve_jobs,
    run_metered,
)
from repro.webmodel.churn import ChurnConfig
from repro.webmodel.churn_columnar import ChurnCohortConfig, run_churn_cohort
from repro.webmodel.churn_reference import run_churn_cohort_reference

#: The engines that can resolve a sweep cell.
CHURN_ENGINES = ("columnar", "scalar")

#: The artifact caches whose hit rates the churn doc can report.
_CACHE_NAMES = ("churn_images", "churn_probes", "filter_builds")


@dataclass(frozen=True)
class ChurnExperimentConfig:
    """The staleness sweep: levels are ``payload_refresh_every`` values."""

    staleness_levels: Tuple[int, ...] = (1, 2, 4, 8)
    trials: int = 2
    base: ChurnConfig = field(default_factory=ChurnConfig)
    #: Cohort population per cell (columns, not the world's fleet knob).
    clients: int = 64
    handshakes_per_client: int = 2
    engine: str = "columnar"


@dataclass(frozen=True)
class ChurnCellResult:
    """Compact summary of one (staleness level, trial) churn run."""

    level: int
    trial: int
    handshakes: int
    completed: int
    fp_retries: int
    fallbacks: int
    failures: int
    stale_advertised: int
    icas_encountered: int
    icas_suppressed: int
    wire_bytes: int
    #: Cumulative filter-update-channel bytes (full images or delta
    #: patches, per the config's ``distribution``).
    distribution_bytes: int
    events: int
    fp_retry_curve: Tuple[float, ...]

    @property
    def fp_retry_rate(self) -> float:
        total = self.handshakes
        return (self.fp_retries + self.fallbacks) / total if total else 0.0

    @property
    def suppression_rate(self) -> float:
        if not self.icas_encountered:
            return 0.0
        return self.icas_suppressed / self.icas_encountered

    @property
    def stale_rate(self) -> float:
        total = self.handshakes
        return self.stale_advertised / total if total else 0.0


def _cell_config(config: ChurnExperimentConfig, level: int, trial: int) -> ChurnConfig:
    # Trials reseed the ecosystem; levels deliberately do NOT, so each
    # trial's curve isolates payload staleness against one event stream.
    return replace(
        config.base,
        payload_refresh_every=level,
        seed=derive_seed("churn.trial", config.base.seed, trial),
    )


def _run_cell(cell: Tuple[int, int, str, ChurnCohortConfig]) -> ChurnCellResult:
    level, trial, engine, cfg = cell
    runner = run_churn_cohort if engine == "columnar" else run_churn_cohort_reference
    result = runner(cfg)
    return ChurnCellResult(
        level=level,
        trial=trial,
        handshakes=result.handshakes,
        completed=result.completed,
        fp_retries=result.fp_retries,
        fallbacks=result.fallbacks,
        failures=result.failures,
        stale_advertised=sum(s.stale_advertised for s in result.steps),
        icas_encountered=sum(s.icas_encountered for s in result.steps),
        icas_suppressed=sum(s.icas_suppressed for s in result.steps),
        wire_bytes=result.total_wire_bytes,
        distribution_bytes=result.total_distribution_bytes,
        events=len(result.events),
        fp_retry_curve=tuple(result.fp_retry_curve()),
    )


def run_churn_experiment(
    config: ChurnExperimentConfig = ChurnExperimentConfig(),
    jobs: Optional[int] = 1,
) -> List[ChurnCellResult]:
    """Run the sweep; results ordered by (level, trial) for any ``jobs``."""
    if config.trials < 1:
        raise SimulationError(f"trials must be >= 1, got {config.trials}")
    if config.engine not in CHURN_ENGINES:
        raise SimulationError(
            f"unknown churn engine {config.engine!r}; expected one of "
            f"{CHURN_ENGINES}"
        )
    cells = [
        (
            level,
            trial,
            config.engine,
            ChurnCohortConfig(
                world=_cell_config(config, level, trial),
                num_clients=config.clients,
                handshakes_per_client=config.handshakes_per_client,
            ),
        )
        for level in config.staleness_levels
        for trial in range(config.trials)
    ]
    jobs = resolve_jobs(jobs)
    metered = obs.enabled()
    if jobs <= 1 or len(cells) <= 1:
        if not metered:
            return [_run_cell(cell) for cell in cells]
        results = []
        for cell in cells:
            result, snap = run_metered(_run_cell, cell)
            obs.merge(snap)
            results.append(result)
        return results
    return parallel_map(
        _run_cell,
        cells,
        jobs=jobs,
        metered=metered,
        shipped_caches=artifacts.export_shippable(),
    )


# -- reporting -------------------------------------------------------------------


def _by_level(
    results: List[ChurnCellResult],
) -> "Dict[int, List[ChurnCellResult]]":
    grouped: Dict[int, List[ChurnCellResult]] = {}
    for r in results:
        grouped.setdefault(r.level, []).append(r)
    return grouped


def format_churn(results: List[ChurnCellResult]) -> str:
    """Staleness table: one row per payload-refresh interval."""
    lines = [
        "Filter staleness vs false-positive retries (PKI lifecycle churn)",
        f"{'refresh every':>14} {'handshakes':>11} {'stale %':>8} "
        f"{'FP-retry %':>11} {'suppressed %':>13} {'wire KiB':>9} "
        f"{'update KiB':>11} {'failed':>7}",
    ]
    for level, cells in sorted(_by_level(results).items()):
        handshakes = sum(c.handshakes for c in cells)
        stale = sum(c.stale_advertised for c in cells)
        retries = sum(c.fp_retries + c.fallbacks for c in cells)
        encountered = sum(c.icas_encountered for c in cells)
        suppressed = sum(c.icas_suppressed for c in cells)
        wire = sum(c.wire_bytes for c in cells)
        distribution = sum(c.distribution_bytes for c in cells)
        failed = sum(c.failures for c in cells)
        # A degenerate sweep (zero epochs) still renders: rates report 0.
        stale_pct = 100.0 * stale / handshakes if handshakes else 0.0
        retry_pct = 100.0 * retries / handshakes if handshakes else 0.0
        lines.append(
            f"{level:>14d} {handshakes:>11d} "
            f"{stale_pct:>8.1f} "
            f"{retry_pct:>11.2f} "
            f"{100.0 * suppressed / max(1, encountered):>13.1f} "
            f"{wire / 1024:>9.1f} "
            f"{distribution / 1024:>11.1f} {failed:>7d}"
        )
    return "\n".join(lines)


def churn_cache_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/size of the artifact caches the churn engines lean on —
    per-process execution detail, reported only when explicitly asked
    (``--cache-stats``) so the default document stays byte-identical
    across engines and ``--jobs`` values."""
    stats = artifacts.stats()
    return {name: stats[name] for name in _CACHE_NAMES if name in stats}


def churn_json_doc(
    config: ChurnExperimentConfig,
    results: List[ChurnCellResult],
    cache_stats: Optional[Dict[str, Dict[str, int]]] = None,
) -> dict:
    """The machine-readable sweep: per-cell summaries plus per-level
    staleness-vs-FP-retry curves (step-indexed, averaged over trials)."""
    curves = {}
    for level, cells in sorted(_by_level(results).items()):
        steps = len(cells[0].fp_retry_curve)
        per_step = [
            sum(c.fp_retry_curve[i] for c in cells) / len(cells)
            for i in range(steps)
        ]
        total = sum(c.handshakes for c in cells)
        curves[str(level)] = {
            "fp_retry_rate": (
                sum(c.fp_retries + c.fallbacks for c in cells) / total
                if total
                else 0.0
            ),
            "per_step_fp_retry_rate": per_step,
            "distribution_bytes": sum(c.distribution_bytes for c in cells),
        }
    doc = {
        "schema": "repro.churn/v1",
        "staleness_levels": list(config.staleness_levels),
        "trials": config.trials,
        "steps": config.base.steps,
        "seed": config.base.seed,
        "filter_kind": config.base.filter_kind,
        "distribution": config.base.distribution,
        "clients": config.clients,
        "handshakes_per_client": config.handshakes_per_client,
        "cells": [
            {
                "level": c.level,
                "trial": c.trial,
                "handshakes": c.handshakes,
                "completed": c.completed,
                "fp_retries": c.fp_retries,
                "fallbacks": c.fallbacks,
                "failures": c.failures,
                "stale_advertised": c.stale_advertised,
                "fp_retry_rate": c.fp_retry_rate,
                "suppression_rate": c.suppression_rate,
                "wire_bytes": c.wire_bytes,
                "distribution_bytes": c.distribution_bytes,
                "events": c.events,
                "fp_retry_curve": list(c.fp_retry_curve),
            }
            for c in results
        ],
        "curves": curves,
    }
    if cache_stats is not None:
        doc["cache_stats"] = cache_stats
    return doc
