"""Table 1 — conventional & PQ TLS authentication data size.

For every signature algorithm and chain length (1, 2 or 3 ICAs) the paper
accumulates the handshake's authentication data: the transmitted
certificates (leaf + ICAs; the root stays home) plus four loose signatures
(CertificateVerify, one OCSP staple, two SCTs).

We report two accountings:

* **der** — the exact DER bytes our substrate transmits (certificates
  built with 400 attribute bytes, real staple encodings);
* **calibrated** — the same totals scaled by a transfer factor of 0.755.
  Reverse-engineering the paper's printed numbers shows its PQ rows are
  consistent with ``0.755 x (sum of cert sizes + 4 raw signatures)`` to
  within ~1% (the paper's footnote applies a DER-vs-CRT encoding ratio);
  the conventional rows deviate more, see EXPERIMENTS.md.

The paper's printed values ship in :data:`PAPER_KB` so benchmarks can
report relative error row by row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.pki.algorithms import TABLE1_ALGORITHMS, get_signature_algorithm
from repro.pki.authority import CertificateAuthority
from repro.pki.certificate import DEFAULT_ATTRIBUTE_BYTES
from repro.pki.keys import KeyPair
from repro.pki.ocsp import OCSPStaple
from repro.pki.sct import SignedCertificateTimestamp

#: The calibration constant matching the paper's PQ rows (see module doc).
PAPER_TRANSFER_FACTOR = 0.755

#: Table 1 as printed (KB, columns: 1, 2, 3 ICAs).
PAPER_KB: Dict[str, Tuple[float, float, float]] = {
    "ecdsa-p256": (0.77, 1.10, 1.44),
    "rsa-2048": (2.13, 2.78, 3.44),
    "falcon-512": (5.04, 6.47, 7.90),
    "falcon-1024": (9.28, 11.81, 14.35),
    "dilithium2": (13.59, 16.57, 19.55),
    "dilithium3": (18.53, 22.59, 26.66),
    "dilithium5": (25.45, 30.91, 36.35),
    "sphincs-128s": (36.76, 42.73, 48.69),
}

#: §3/§5.2: the initcwnd threshold auth data must stay under (bytes).
INITCWND_BYTES = 14600


@dataclass(frozen=True)
class Table1Cell:
    algorithm: str
    num_icas: int
    der_bytes: int
    calibrated_bytes: float
    paper_kb: float

    @property
    def der_kb(self) -> float:
        return self.der_bytes / 1000

    @property
    def calibrated_kb(self) -> float:
        return self.calibrated_bytes / 1000

    @property
    def exceeds_initcwnd(self) -> bool:
        return self.calibrated_bytes > INITCWND_BYTES


def _measured_auth_bytes(algorithm_name: str, num_icas: int) -> int:
    """Exact transmitted auth bytes: DER certs + CV/OCSP/SCT payloads."""
    alg = get_signature_algorithm(algorithm_name)
    root = CertificateAuthority.create_root("T1 Root", algorithm_name, seed=0x71)
    issuer = root
    ica_certs = []
    for i in range(num_icas):
        issuer = issuer.create_subordinate(f"T1 ICA {i}", seed=0x72 + i)
        ica_certs.append(issuer.certificate)
    leaf = issuer.issue_leaf("t1.example", seed=0x90)
    responder = KeyPair(alg, 0x91)
    ocsp = OCSPStaple.create(leaf, responder, produced_at=1)
    scts = [
        SignedCertificateTimestamp.create(leaf, responder, bytes([i]) * 32, 1)
        for i in (1, 2)
    ]
    cert_bytes = leaf.size_bytes() + sum(c.size_bytes() for c in ica_certs)
    return (
        cert_bytes
        + alg.signature_bytes  # CertificateVerify
        + ocsp.size_bytes()
        + sum(s.size_bytes() for s in scts)
    )


def _paper_accounting_bytes(algorithm_name: str, num_icas: int) -> float:
    """The paper's apparent formula: transfer factor times certificate
    payloads plus four raw signatures."""
    alg = get_signature_algorithm(algorithm_name)
    certs = (num_icas + 1) * alg.auth_bytes_per_certificate(DEFAULT_ATTRIBUTE_BYTES)
    return PAPER_TRANSFER_FACTOR * (certs + 4 * alg.signature_bytes)


def compute_table1(
    algorithms: Sequence[str] = tuple(TABLE1_ALGORITHMS),
    ica_counts: Sequence[int] = (1, 2, 3),
) -> List[Table1Cell]:
    cells = []
    for name in algorithms:
        paper = PAPER_KB.get(name, (float("nan"),) * 3)
        for n in ica_counts:
            cells.append(
                Table1Cell(
                    algorithm=name,
                    num_icas=n,
                    der_bytes=_measured_auth_bytes(name, n),
                    calibrated_bytes=_paper_accounting_bytes(name, n),
                    paper_kb=paper[n - 1] if n - 1 < len(paper) else float("nan"),
                )
            )
    return cells


def format_table1(cells: Sequence[Table1Cell]) -> str:
    by_alg: Dict[str, List[Table1Cell]] = {}
    for cell in cells:
        by_alg.setdefault(cell.algorithm, []).append(cell)
    rows = []
    for name, group in by_alg.items():
        group = sorted(group, key=lambda c: c.num_icas)
        alg = get_signature_algorithm(name)
        rows.append(
            [
                name,
                alg.nist_level or "-",
                *(f"{c.der_kb:.2f}" for c in group),
                *(f"{c.calibrated_kb:.2f}" for c in group),
                *(f"{c.paper_kb:.2f}" for c in group),
            ]
        )
    n = max(c.num_icas for c in cells)
    header = (
        ["algorithm", "level"]
        + [f"der {i}ICA" for i in range(1, n + 1)]
        + [f"cal {i}ICA" for i in range(1, n + 1)]
        + [f"paper {i}ICA" for i in range(1, n + 1)]
    )
    return format_table(header, rows, title="Table 1 — auth data per handshake (KB)")


def initcwnd_conclusions(cells: Sequence[Table1Cell]) -> Dict[str, bool]:
    """The table's takeaway: which algorithm/chain combinations stay
    within the 10-MSS window (True = no extra round trip)."""
    return {
        f"{c.algorithm}/{c.num_icas}": not c.exceeds_initcwnd for c in cells
    }
