"""Cache warm-up dynamics: preloading vs organic learning.

The paper seeds its filter from a crawl-derived hot set (and cites
Mozilla's Intermediate CA Preloading as prior art); a client could instead
start cold and learn ICAs from completed handshakes (§4.2's cache grows
either way). This experiment measures the suppression rate as a function
of handshakes completed, for three bootstrap strategies:

* ``preload-hot`` — the paper's configuration (June-'22 hot set);
* ``cold-learning`` — empty cache, learn every observed ICA;
* ``preload+learning`` — both (the deployable sweet spot).

The result is the convergence curve a deployment team would want: how
many handshakes until a cold client reaches preloaded-level suppression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.core.suppression import ClientSuppressor
from repro.pki.store import IntermediatePreload
from repro.webmodel.browsing import BrowsingConfig, BrowsingModel
from repro.webmodel.population import ICAPopulation, PopulationConfig

STRATEGIES = ("preload-hot", "cold-learning", "preload+learning")


@dataclass(frozen=True)
class WarmupCurve:
    strategy: str
    checkpoints: List[int]  # handshake counts
    suppression_rates: List[float]  # cumulative ICA suppression at each
    final_cache_size: int


def _make_suppressor(strategy: str, hot, seed: int) -> ClientSuppressor:
    preload = (
        IntermediatePreload(hot) if strategy != "cold-learning" else None
    )
    return ClientSuppressor(
        preload=preload,
        filter_kind="vacuum",
        budget_bytes=None,
        seed=seed,
    )


def warmup_curves(
    strategies: Sequence[str] = STRATEGIES,
    num_destinations: int = 1200,
    checkpoint_every: int = 100,
    population: Optional[ICAPopulation] = None,
    seed: int = 9,
) -> List[WarmupCurve]:
    """Suppression-rate-so-far curves over a shared destination stream.

    Uses the filter/cache pipeline directly (no TLS byte shuffling) so
    long streams stay cheap; the TLS equivalence is covered by the
    session simulator's tests.
    """
    population = population or ICAPopulation(PopulationConfig(seed=seed))
    browsing = BrowsingModel(BrowsingConfig(seed=seed), ranking=population.ranking)
    destinations: List[int] = []
    while len(destinations) < num_destinations:
        visits = browsing.session(50)
        for rank in browsing.unique_destination_ranks(visits):
            destinations.append(rank)
            if len(destinations) == num_destinations:
                break
    hot = population.hot_ica_certificates()

    curves = []
    for strategy in strategies:
        suppressor = _make_suppressor(strategy, hot, seed)
        learning = strategy != "preload-hot"
        suppressed = total = 0
        checkpoints: List[int] = []
        rates: List[float] = []
        for i, rank in enumerate(destinations, start=1):
            chain = population.chain_for_rank(rank)
            filt = suppressor.filter
            for fp in chain.ica_fingerprints():
                total += 1
                suppressed += filt.contains(fp)
            if learning:
                suppressor.learn_from(chain)
            if i % checkpoint_every == 0:
                checkpoints.append(i)
                rates.append(suppressed / total if total else 0.0)
        curves.append(
            WarmupCurve(
                strategy=strategy,
                checkpoints=checkpoints,
                suppression_rates=rates,
                final_cache_size=len(suppressor.cache),
            )
        )
    return curves


def format_warmup(curves: Sequence[WarmupCurve]) -> str:
    checkpoints = curves[0].checkpoints
    rows = [
        [
            c.strategy,
            *(f"{100 * r:.1f}" for r in c.suppression_rates),
            c.final_cache_size,
        ]
        for c in curves
    ]
    return format_table(
        ["strategy"] + [f"@{n}" for n in checkpoints] + ["cache"],
        rows,
        title="Cache warm-up — cumulative ICA suppression rate (%) vs handshakes",
    )


def handshakes_to_reach(
    curve: WarmupCurve, target_rate: float
) -> Optional[int]:
    """First checkpoint at which the curve reaches ``target_rate``."""
    for n, rate in zip(curve.checkpoints, curve.suppression_rates):
        if rate >= target_rate:
            return n
    return None
