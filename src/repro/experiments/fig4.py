"""Figure 4 — IC-suppression extension size vs false-positive probability.

The tunable the paper highlights for different TLS use cases: a service
mesh talking to a small peer set can buy a much smaller FPP for the same
bytes (§5.2). We sweep the FPP at the paper's 245-IC capacity and report
the full on-the-wire extension size (filter payload + AMQ header + TLS
extension framing).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.amq import FilterParams, canonical_params
from repro.amq.serialization import filter_class_for_name, serialized_overhead_bytes
from repro.analysis.tables import format_table

PAPER_CAPACITY = 245
PAPER_LOAD_FACTOR = 0.9
_TLS_EXTENSION_FRAMING = 4

DEFAULT_FPPS = (1e-1, 3e-2, 1e-2, 3e-3, 1e-3, 3e-4, 1e-4)


def fpp_sweep(
    kinds: Sequence[str] = ("cuckoo", "vacuum", "quotient"),
    fpps: Sequence[float] = DEFAULT_FPPS,
    capacity: int = PAPER_CAPACITY,
    load_factor: float = PAPER_LOAD_FACTOR,
) -> Dict[str, List[Tuple[float, int]]]:
    """{kind: [(fpp, extension_bytes_on_wire), ...]}."""
    overhead = serialized_overhead_bytes() + _TLS_EXTENSION_FRAMING
    out: Dict[str, List[Tuple[float, int]]] = {}
    for kind in kinds:
        cls = filter_class_for_name(kind)
        series = []
        for fpp in fpps:
            params = canonical_params(
                FilterParams(capacity=capacity, fpp=fpp, load_factor=load_factor)
            )
            series.append((fpp, cls(params).size_in_bytes() + overhead))
        out[kind] = series
    return out


def format_fpp_sweep(sweep: Dict[str, List[Tuple[float, int]]]) -> str:
    fpps = [fpp for fpp, _ in next(iter(sweep.values()))]
    rows = [
        [kind, *(str(size) for _, size in series)] for kind, series in sweep.items()
    ]
    return format_table(
        ["structure"] + [f"fpp={fpp:g}" for fpp in fpps],
        rows,
        title=(
            f"Fig. 4 — extension size (bytes) vs FPP "
            f"(capacity {PAPER_CAPACITY}, LF {PAPER_LOAD_FACTOR})"
        ),
    )


def monotone_decreasing_in_fpp(sweep: Dict[str, List[Tuple[float, int]]]) -> bool:
    """The figure's 'reversely-proportional' relation: looser FPP, smaller
    extension (FPPs must be passed loosest-first)."""
    for series in sweep.values():
        sizes = [size for _, size in series]
        if any(a > b for a, b in zip(sizes, sizes[1:])):
            return False
    return True
