"""Related-work comparison — AMQ filter vs cTLS dictionary vs per-peer
cache flags (§2 of the paper, quantified).

Runs the three designs over one identical browsing workload and reports
the axes the paper's argument rests on:

* on-the-wire advertisement bytes per handshake;
* out-of-band synchronization traffic (cTLS's hidden cost);
* client state (the per-peer mapping the caching design needs);
* suppression coverage, including the first-contact misses that only the
  filter approach avoids ("without having to maintain any cross matching
  information between peers", §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.core.baselines import CTLSClient, CTLSDictionary, PeerCacheFlags
from repro.core.suppression import ClientSuppressor
from repro.pki.store import IntermediatePreload
from repro.webmodel.browsing import BrowsingConfig, BrowsingModel
from repro.webmodel.population import ICAPopulation, PopulationConfig


@dataclass(frozen=True)
class BaselineRow:
    design: str
    wire_bytes_per_handshake: float
    oob_sync_bytes: int
    client_state_bytes: int
    ica_suppression_rate: float
    first_contact_suppression: bool


def compare_designs(
    num_domains: int = 100,
    repeat_visits: int = 2,
    population: Optional[ICAPopulation] = None,
    seed: int = 5,
) -> List[BaselineRow]:
    """One workload, three designs.

    ``repeat_visits`` models reconnects: designs that learn per peer only
    pay off on revisits, while the filter suppresses on first contact.
    """
    population = population or ICAPopulation(PopulationConfig(seed=seed))
    browsing = BrowsingModel(
        BrowsingConfig(seed=seed), ranking=population.ranking
    )
    destinations = browsing.unique_destination_ranks(
        browsing.session(num_domains)
    )
    contacts = destinations * repeat_visits

    hot = population.hot_ica_certificates()
    hot_fps = {c.fingerprint() for c in hot}

    # --- AMQ filter (the paper's design) -----------------------------------
    suppressor = ClientSuppressor(
        preload=IntermediatePreload(hot), filter_kind="vacuum",
        budget_bytes=None, seed=seed,
    )
    filt = suppressor.filter
    filter_wire = len(suppressor.extension_payload()) + 4
    filter_suppressed = filter_total = 0
    for rank in contacts:
        chain = population.chain_for_rank(rank)
        for fp in chain.ica_fingerprints():
            filter_total += 1
            filter_suppressed += filt.contains(fp)

    # --- cTLS dictionary -----------------------------------------------------
    dictionary = CTLSDictionary()
    dictionary.publish(hot)
    ctls = CTLSClient(dictionary)
    ctls.sync()
    ctls_suppressed = 0
    for rank in contacts:
        chain = population.chain_for_rank(rank)
        ctls_suppressed += len(ctls.suppressed(str(rank), chain))

    # --- per-peer cache flags ----------------------------------------------------
    flags = PeerCacheFlags()
    flags_suppressed = 0
    for rank in contacts:
        chain = population.chain_for_rank(rank)
        flags_suppressed += len(flags.suppressed(str(rank), chain))
        flags.observe(str(rank), chain)

    rows = [
        BaselineRow(
            design="amq-filter (this paper)",
            wire_bytes_per_handshake=filter_wire,
            oob_sync_bytes=0,
            client_state_bytes=32 * len(suppressor.cache) + filt.size_in_bytes(),
            ica_suppression_rate=filter_suppressed / filter_total,
            first_contact_suppression=True,
        ),
        BaselineRow(
            design="ctls-dictionary",
            wire_bytes_per_handshake=ctls.advertisement_bytes(""),
            oob_sync_bytes=dictionary.ledger.bytes_sent,
            client_state_bytes=32 * len(dictionary),
            ica_suppression_rate=ctls_suppressed / filter_total,
            first_contact_suppression=True,
        ),
        BaselineRow(
            design="peer-cache-flags",
            wire_bytes_per_handshake=flags.advertisement_bytes(""),
            oob_sync_bytes=0,
            client_state_bytes=flags.state_bytes(),
            ica_suppression_rate=flags_suppressed / filter_total,
            first_contact_suppression=False,
        ),
    ]
    return rows


def format_baselines(rows: Sequence[BaselineRow]) -> str:
    table_rows = [
        [
            r.design,
            f"{r.wire_bytes_per_handshake:.0f}",
            r.oob_sync_bytes,
            r.client_state_bytes,
            f"{100 * r.ica_suppression_rate:.1f}%",
            "yes" if r.first_contact_suppression else "no",
        ]
        for r in rows
    ]
    return format_table(
        ["design", "wire B/hs", "oob sync B", "client state B",
         "ICA suppression", "1st-contact sup"],
        table_rows,
        title="Related-work comparison — one workload, three designs",
    )
