"""Mixed certificate chains (Paul et al. [41] / Sikeridis et al. [55]).

Table 1's note: the paper uses "the same algorithm for all certificates
within each chain" and defers mixed-chain strategies to its references.
This study implements them anyway and asks the natural follow-up: do
mixed chains and ICA suppression compete or compose?

The canonical mix pairs Falcon-512 CA signatures (small, slow to create —
fine for rarely-reissued CA certs) with a Dilithium-2 leaf key (fast
online signing for CertificateVerify). We measure the transmitted auth
data for pure and mixed chains, with and without suppression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.pki.authority import CertificateAuthority, ServerCredential
from repro.pki.chain import CertificateChain
from repro.pki.keys import KeyPair
from repro.pki.algorithms import get_signature_algorithm
from repro.runtime.parallel import parallel_map, resolve_jobs


@dataclass(frozen=True)
class MixedChainRow:
    label: str
    chain_bytes: int
    suppressed_bytes: int
    leaf_sign_ms: float

    @property
    def suppression_saving(self) -> int:
        return self.chain_bytes - self.suppressed_bytes


def _build_chain(
    ca_algorithm: str, leaf_algorithm: str, num_icas: int, seed: int
) -> ServerCredential:
    root = CertificateAuthority.create_root(
        f"Mix Root {ca_algorithm}", ca_algorithm, seed=seed
    )
    issuer = root
    icas = []
    for i in range(num_icas):
        issuer = issuer.create_subordinate(f"Mix ICA {i}", seed=seed + 1 + i)
        icas.append(issuer.certificate)
    leaf_alg = get_signature_algorithm(leaf_algorithm)
    keypair = KeyPair(leaf_alg, seed + 100)
    leaf = issuer.issue_leaf_with_key("mixed.example", keypair)
    return ServerCredential(
        chain=CertificateChain(leaf, tuple(icas), root.certificate),
        keypair=keypair,
    )


def _comparison_row(spec: Tuple[str, str, str, int]) -> MixedChainRow:
    """Build one configuration's chain and measure it (module-level so
    the parallel path can pickle it into worker processes)."""
    label, ca_alg, leaf_alg, num_icas = spec
    credential = _build_chain(ca_alg, leaf_alg, num_icas, seed=0xA11)
    chain = credential.chain
    return MixedChainRow(
        label=label,
        chain_bytes=chain.transmitted_bytes(),
        suppressed_bytes=chain.transmitted_bytes(
            set(chain.ica_fingerprints())
        ),
        leaf_sign_ms=get_signature_algorithm(leaf_alg).sign_ms,
    )


def mixed_chain_comparison(
    num_icas: int = 2,
    configurations: Optional[Sequence[Tuple[str, str, str]]] = None,
    jobs: Optional[int] = 1,
) -> List[MixedChainRow]:
    """(label, CA algorithm, leaf algorithm) rows; defaults cover the
    pure chains of Table 1 plus the canonical Falcon/Dilithium mix.
    ``jobs`` builds configurations in parallel processes (each one issues
    a full chain, which is signature-heavy; ``None``/``0`` = all cores).
    """
    configurations = configurations or (
        ("pure dilithium2", "dilithium2", "dilithium2"),
        ("pure falcon-512", "falcon-512", "falcon-512"),
        ("mixed falcon CAs + dilithium2 leaf", "falcon-512", "dilithium2"),
        ("mixed falcon CAs + dilithium3 leaf", "falcon-512", "dilithium3"),
    )
    specs = [
        (label, ca_alg, leaf_alg, num_icas)
        for label, ca_alg, leaf_alg in configurations
    ]
    return parallel_map(_comparison_row, specs, jobs=resolve_jobs(jobs))


def format_mixed_chains(rows: Sequence[MixedChainRow]) -> str:
    table_rows = [
        [
            r.label,
            r.chain_bytes,
            r.suppressed_bytes,
            r.suppression_saving,
            f"{r.leaf_sign_ms:.2f}",
        ]
        for r in rows
    ]
    return format_table(
        ["chain", "tx bytes", "suppressed tx", "sup saving", "leaf sign ms"],
        table_rows,
        title="Mixed chains ([41]/[55]) x ICA suppression (2-ICA chains)",
    )
