"""Wire format for AMQ filters.

The IC-suppression extension carries the filter itself inside the
ClientHello (paper §4.2: the client specifies "the specific filter used
(e.g., Quotient, Cuckoo)"), so both endpoints must reconstruct an identical
structure from bytes. The format is deliberately small — every header byte
competes with filter payload for the ~550-byte ClientHello budget:

====== ======= ====================================================
offset  size    field
====== ======= ====================================================
0       2       magic ``0xA3 0x01`` (AMQ wire format v1)
2       1       filter type id (see :data:`FILTER_REGISTRY`)
3       4       capacity (uint32, big endian)
7       2       fpp exponent: fpp = 2 ** (-e / 256) (uint16)
9       1       load factor in 1/255 units
10      4       hash seed (uint32)
14      2       payload length (uint16)
16      n       type-specific payload (``AMQFilter.to_bytes``)
====== ======= ====================================================

The fpp/load-factor quantization is lossless for every value the planner
produces (it rounds through the same quantizer, see
:class:`repro.core.filter_config.FilterPlan`).
"""

from __future__ import annotations

import math
import struct
from typing import Dict, Type

from repro.amq.base import AMQFilter, FilterParams
from repro.amq.bloom import BloomFilter, CountingBloomFilter
from repro.amq.cuckoo import CuckooFilter
from repro.amq.quotient import QuotientFilter
from repro.amq.vacuum import VacuumFilter
from repro.amq.xor import XorFilter
from repro.errors import ConfigurationError, FilterSerializationError

_MAGIC = b"\xa3\x01"
_HEADER = struct.Struct(">2sBIHBIH")

#: Stable wire ids for each filter class.
FILTER_REGISTRY: Dict[int, Type[AMQFilter]] = {
    1: BloomFilter,
    2: CountingBloomFilter,
    3: CuckooFilter,
    4: VacuumFilter,
    5: QuotientFilter,
    6: XorFilter,
}

_TYPE_IDS = {cls: type_id for type_id, cls in FILTER_REGISTRY.items()}
_NAME_TO_CLS = {cls.name: cls for cls in FILTER_REGISTRY.values()}


def filter_type_id(filt_or_cls) -> int:
    """Wire type id for a filter instance or class."""
    cls = filt_or_cls if isinstance(filt_or_cls, type) else type(filt_or_cls)
    try:
        return _TYPE_IDS[cls]
    except KeyError:
        raise FilterSerializationError(
            f"{cls.__name__} is not registered in the AMQ wire format"
        ) from None


def filter_class_for_name(name: str) -> Type[AMQFilter]:
    """Filter class from its stable short name ('cuckoo', 'vacuum', ...)."""
    try:
        return _NAME_TO_CLS[name]
    except KeyError:
        raise FilterSerializationError(
            f"unknown filter name {name!r}; expected one of {sorted(_NAME_TO_CLS)}"
        ) from None


def quantize_fpp(fpp: float) -> int:
    """Encode fpp as a 16-bit exponent: fpp = 2**(-e/256)."""
    e = round(-math.log2(fpp) * 256)
    return max(1, min(0xFFFF, e))


def dequantize_fpp(encoded: int) -> float:
    return 2 ** (-encoded / 256)


def quantize_load_factor(lf: float) -> int:
    return max(1, min(255, round(lf * 255)))


def dequantize_load_factor(encoded: int) -> float:
    return encoded / 255


def canonical_params(params: FilterParams) -> FilterParams:
    """Round ``params`` through the wire quantizers.

    Filters built from canonical params survive serialize/deserialize with
    identical geometry *and* identical hashing: both endpoints derive
    fingerprint and table sizes from the exact same (quantized) fpp and
    load factor, and the hash seed is folded into the wire format's 32-bit
    field. A seed wider than 32 bits would otherwise survive locally but
    arrive truncated at the peer, turning every stored item into a false
    negative on the remote side.
    """
    return FilterParams(
        capacity=params.capacity,
        fpp=dequantize_fpp(quantize_fpp(params.fpp)),
        load_factor=dequantize_load_factor(quantize_load_factor(params.load_factor)),
        seed=params.seed & 0xFFFFFFFF,
    )


def serialize_filter(filt: AMQFilter) -> bytes:
    """Serialize ``filt`` (header + payload) for transport."""
    payload = filt.to_bytes()
    if len(payload) > 0xFFFF:
        raise FilterSerializationError(
            f"filter payload of {len(payload)} bytes exceeds the wire format "
            "maximum of 65535"
        )
    params = filt.params
    if params.seed != params.seed & 0xFFFFFFFF:
        # Refuse rather than truncate: the peer would rebuild the filter
        # with a different hash seed and lose every stored item. Callers
        # that plan through canonical_params never hit this.
        raise FilterSerializationError(
            f"filter hash seed {params.seed} does not fit the wire format's "
            "32-bit seed field; build the filter from canonical_params"
        )
    header = _HEADER.pack(
        _MAGIC,
        filter_type_id(filt),
        params.capacity,
        quantize_fpp(params.fpp),
        quantize_load_factor(params.load_factor),
        params.seed,
        len(payload),
    )
    return header + payload


def deserialize_filter(data: bytes) -> AMQFilter:
    """Parse a wire image back into a live filter."""
    if len(data) < _HEADER.size:
        raise FilterSerializationError(
            f"filter wire image is {len(data)} bytes; header needs {_HEADER.size}"
        )
    magic, type_id, capacity, fpp_enc, lf_enc, seed, payload_len = _HEADER.unpack(
        data[: _HEADER.size]
    )
    if magic != _MAGIC:
        raise FilterSerializationError(f"bad AMQ magic {magic!r}")
    try:
        cls = FILTER_REGISTRY[type_id]
    except KeyError:
        raise FilterSerializationError(f"unknown filter type id {type_id}") from None
    payload = data[_HEADER.size :]
    if len(payload) != payload_len:
        raise FilterSerializationError(
            f"filter payload is {len(payload)} bytes, header declares {payload_len}"
        )
    # The quantizers clamp to >= 1, so a zero exponent (fpp = 1.0) or a
    # zero load factor is an encoding the serializer can never emit;
    # reject it symmetrically instead of relying on downstream param
    # validation to happen to catch the decoded values.
    if fpp_enc == 0:
        raise FilterSerializationError(
            "wire image carries a zero fpp exponent (fpp = 1.0); the "
            "quantizer never emits values below 1"
        )
    if lf_enc == 0:
        raise FilterSerializationError(
            "wire image carries a zero load factor; the quantizer never "
            "emits values below 1/255"
        )
    try:
        params = FilterParams(
            capacity=capacity,
            fpp=dequantize_fpp(fpp_enc),
            load_factor=dequantize_load_factor(lf_enc),
            seed=seed,
        )
    except ConfigurationError as exc:
        raise FilterSerializationError(
            f"wire image carries invalid filter params: {exc}"
        ) from exc
    # The header's payload_len only proves the image is self-consistent; a
    # truncated-but-self-consistent image must also match the geometry the
    # decoded params imply, or from_bytes would build a mis-sized filter.
    expected = cls.expected_payload_bytes(params)
    if payload_len != expected:
        raise FilterSerializationError(
            f"{cls.name} payload of {payload_len} bytes does not match the "
            f"geometry derived from its parameters ({expected} bytes expected "
            f"for capacity={params.capacity})"
        )
    return cls.from_bytes(params, payload)


def serialized_overhead_bytes() -> int:
    """Header bytes added on top of the raw filter payload."""
    return _HEADER.size
