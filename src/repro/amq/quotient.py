"""Quotient filter (Bender et al., Pandey et al. — SIGMOD 2017 "CQF").

The third dynamically-updatable AMQ candidate the paper evaluates. An item's
64-bit hash is split into a ``q``-bit *quotient* (its canonical slot) and an
``r``-bit *remainder* stored in the table. Collided remainders are kept in
sorted *runs* placed by linear probing, tracked with the classic three
metadata bits per slot:

``is_occupied``
    some stored item has this slot as its canonical slot;
``is_continuation``
    this slot's remainder continues the run started to its left;
``is_shifted``
    this slot's remainder is not in its canonical slot.

Duplicate remainders are permitted inside a run, which is what gives the
*counting* quotient filter its counting semantics: inserting the same item
``k`` times requires ``k`` deletes to clear it.

Deletion rebuilds the affected cluster (the maximal contiguous non-empty
slot range) from its decoded ``(quotient, remainder)`` cells. Clusters stay
short at practical load factors, so this keeps the implementation compact
and verifiably correct, which matters more here than constant-factor speed.

The layout is *history independent*: the table contents are a pure function
of the stored (quotient, remainder) multiset (each cluster stores its runs
in quotient order, each run sorted, packed by linear probing). The bulk
build exploits this: sorting the cells and solving the placement recurrence
``pos_i = max(q_i, pos_{i-1} + 1)`` with two vectorized max-scans produces
the exact table an insert loop would, without touching Python per cell.
"""

from __future__ import annotations

from collections import deque
from typing import List, Sequence, Tuple

from repro.amq import bitpack
from repro.amq.base import AMQFilter, FilterParams
from repro.amq.hashing import VECTOR_MIN_BATCH, hash64, hash64_np, np
from repro.amq.sizing import quotient_geometry, remainder_bits_for_fpp
from repro.errors import FilterFullError, FilterSerializationError


class QuotientFilter(AMQFilter):
    """Counting quotient filter with three metadata bits per slot."""

    name = "quotient"
    supports_deletion = True

    def __init__(self, params: FilterParams) -> None:
        super().__init__(params)
        self._slots = quotient_geometry(params.capacity, params.load_factor)
        self._q_bits = self._slots.bit_length() - 1
        self._r_bits = remainder_bits_for_fpp(params.fpp)
        if np is not None:
            self._occ = np.zeros(self._slots, dtype=bool)
            self._cont = np.zeros(self._slots, dtype=bool)
            self._shift = np.zeros(self._slots, dtype=bool)
            self._rem = np.zeros(self._slots, dtype=np.uint64)
        else:
            self._occ = [False] * self._slots
            self._cont = [False] * self._slots
            self._shift = [False] * self._slots
            self._rem = [0] * self._slots

    # -- geometry ---------------------------------------------------------------

    @property
    def quotient_bits(self) -> int:
        return self._q_bits

    @property
    def remainder_bits(self) -> int:
        return self._r_bits

    def slot_count(self) -> int:
        return self._slots

    def size_in_bytes(self) -> int:
        return self._slots * (self._r_bits + 3) // 8

    def effective_fpp(self) -> float:
        """Hard collision rate: ``alpha * 2^-r`` (Bender et al.)."""
        return self.load_factor() * 2.0 ** -self._r_bits

    # -- hashing ---------------------------------------------------------------

    def _qr(self, item: bytes) -> "tuple[int, int]":
        h = hash64(item, self._params.seed)
        rem = h & ((1 << self._r_bits) - 1)
        quo = (h >> self._r_bits) & (self._slots - 1)
        return quo, rem

    # -- slot helpers ------------------------------------------------------------

    def _slot_empty(self, pos: int) -> bool:
        return not (self._occ[pos] or self._cont[pos] or self._shift[pos])

    def _cluster_start(self, q: int) -> int:
        b = q
        while self._shift[b]:
            b = (b - 1) % self._slots
        return b

    def _run_start(self, q: int) -> int:
        """Position of the first remainder of quotient ``q``'s run.

        Requires ``self._occ[q]`` (set by the caller for insertions of a new
        quotient). Walks back to the cluster start, then forward skipping one
        run per occupied canonical slot between the cluster start and ``q``.
        """
        b = self._cluster_start(q)
        s = b
        while b != q:
            # Skip the run that starts at s.
            s = (s + 1) % self._slots
            while self._cont[s]:
                s = (s + 1) % self._slots
            # Advance b to the next occupied canonical slot.
            b = (b + 1) % self._slots
            while not self._occ[b]:
                b = (b + 1) % self._slots
        return s

    # -- core operations ------------------------------------------------------------

    def _insert(self, item: bytes) -> None:
        if self._count >= self._slots - 1:
            # Keep one slot free so probe scans always terminate.
            raise FilterFullError(
                f"quotient filter full ({self._count}/{self._slots} slots)"
            )
        q, rem = self._qr(item)
        self._insert_qr(q, rem)
        self._count += 1

    def _insert_qr(self, q: int, rem: int) -> None:
        was_occupied = bool(self._occ[q])
        if not was_occupied and self._slot_empty(q):
            self._occ[q] = True
            self._rem[q] = rem
            return
        self._occ[q] = True
        start = self._run_start(q)
        pos = start
        at_run_start = True
        if was_occupied:
            # Find the sorted position inside the existing run.
            while True:
                if rem <= self._rem[pos]:
                    break
                nxt = (pos + 1) % self._slots
                if not self._cont[nxt]:
                    pos = nxt
                    at_run_start = False
                    break
                pos = nxt
                at_run_start = False
        new_cont = was_occupied and not at_run_start
        displaced_start = was_occupied and at_run_start
        self._shift_in(q, pos, rem, new_cont, displaced_start)

    def _shift_in(
        self,
        q: int,
        insert_pos: int,
        rem: int,
        new_cont: bool,
        displaced_start: bool,
    ) -> None:
        """Write the new cell at ``insert_pos``, rippling displaced cells
        right until an empty slot absorbs the carry."""
        carry_rem = rem
        carry_cont = new_cont
        pos = insert_pos
        shifted_flag = pos != q
        first = True
        while True:
            if self._slot_empty(pos):
                self._rem[pos] = carry_rem
                self._cont[pos] = carry_cont
                self._shift[pos] = shifted_flag
                return
            occ_rem = int(self._rem[pos])
            occ_cont = bool(self._cont[pos])
            self._rem[pos] = carry_rem
            self._cont[pos] = carry_cont
            self._shift[pos] = shifted_flag
            carry_rem = occ_rem
            carry_cont = occ_cont
            if first and displaced_start:
                # The old run head now continues the run our cell heads.
                carry_cont = True
            first = False
            pos = (pos + 1) % self._slots
            shifted_flag = True

    def _contains(self, item: bytes) -> bool:
        q, rem = self._qr(item)
        if not self._occ[q]:
            return False
        pos = self._run_start(q)
        while True:
            if self._rem[pos] == rem:
                return True
            if self._rem[pos] > rem:
                return False  # runs are sorted
            pos = (pos + 1) % self._slots
            if not self._cont[pos]:
                return False

    # -- batch overrides ------------------------------------------------------

    def _qr_batch_np(self, items: Sequence[bytes]):
        """Vectorized :meth:`_qr` — (quotient, remainder) uint64 arrays."""
        h = hash64_np(items, self._params.seed)
        rem = h & np.uint64((1 << self._r_bits) - 1)
        quo = (h >> np.uint64(self._r_bits)) & np.uint64(self._slots - 1)
        return quo, rem

    def _qr_batch(self, items: Sequence[bytes]) -> "List[Tuple[int, int]]":
        """Vectorized :meth:`_qr` — one (quotient, remainder) per item."""
        quo, rem = self._qr_batch_np(items)
        return list(zip(quo.tolist(), rem.tolist()))

    def _insert_batch(self, items: Sequence[bytes]) -> None:
        if np is None or len(items) < VECTOR_MIN_BATCH:
            return super()._insert_batch(items)
        if self._count == 0:
            return self._bulk_build(items)
        limit = self._slots - 1
        for index, (q, rem) in enumerate(self._qr_batch(items)):
            if self._count >= limit:
                raise FilterFullError(
                    f"quotient filter full ({self._count}/{self._slots} slots)",
                    inserted_count=index,
                )
            self._insert_qr(q, rem)
            self._count += 1

    def _bulk_build(self, items: Sequence[bytes]) -> None:
        """Vectorized build into an empty table.

        The layout is history independent, so the cells can be placed in
        sorted (quotient, remainder) order: the placement recurrence
        ``pos_i = max(q_i, pos_{i-1} + 1)`` linearizes to a running max of
        ``q_i - i``, one ``np.maximum.accumulate`` pass. Cells pushed past
        the last slot wrap to positions ``0..w-1`` (they are consecutive:
        each is shifted, so each sits one past its predecessor), which in
        turn displaces the start of the table by ``w`` — a second
        max-scan pass with floor ``w``. The overflow count must agree
        between passes; the rare disagreement (wrap interacting with
        wrap) falls back to the scalar loop.
        """
        limit = self._slots - 1
        allowed = min(len(items), limit)
        quo, rem = self._qr_batch_np(items)
        q_all, r_all = quo, rem
        quo, rem = quo[:allowed], rem[:allowed]
        order = np.lexsort((rem, quo))
        q_s = quo[order].astype(np.int64)
        r_s = rem[order]
        n = allowed
        ar = np.arange(n, dtype=np.int64)
        base = np.maximum.accumulate(q_s - ar)
        pos = base + ar
        w = int(np.count_nonzero(pos >= self._slots))
        if w:
            pos = np.maximum(base, w) + ar
            if int(np.count_nonzero(pos >= self._slots)) != w:
                return self._bulk_build_fallback(q_all, r_all, allowed, len(items))
        posm = pos % self._slots
        first_of_run = np.empty(n, dtype=bool)
        first_of_run[0] = True
        first_of_run[1:] = q_s[1:] != q_s[:-1]
        self._occ[q_s] = True
        self._cont[posm] = ~first_of_run
        self._shift[posm] = pos != q_s
        self._rem[posm] = r_s
        self._count = n
        if allowed < len(items):
            raise FilterFullError(
                f"quotient filter full ({self._count}/{self._slots} slots)",
                inserted_count=allowed,
            )

    def _bulk_build_fallback(self, quo, rem, allowed: int, total: int) -> None:
        for index in range(allowed):
            self._insert_qr(int(quo[index]), int(rem[index]))
            self._count += 1
        if allowed < total:
            raise FilterFullError(
                f"quotient filter full ({self._count}/{self._slots} slots)",
                inserted_count=allowed,
            )

    def _contains_batch(self, items: Sequence[bytes]) -> List[bool]:
        if np is None or len(items) < VECTOR_MIN_BATCH:
            return super()._contains_batch(items)
        if len(items) >= max(VECTOR_MIN_BATCH, self._slots >> 6):
            return self._contains_batch_np(items)
        occ = self._occ
        cont = self._cont
        rems = self._rem
        slots = self._slots
        run_start = self._run_start
        out: List[bool] = []
        for q, rem in self._qr_batch(items):
            if not occ[q]:
                out.append(False)
                continue
            pos = run_start(q)
            hit = False
            while True:
                stored = rems[pos]
                if stored == rem:
                    hit = True
                    break
                if stored > rem:
                    break  # runs are sorted
                pos = (pos + 1) % slots
                if not cont[pos]:
                    break
            out.append(hit)
        return out

    def _contains_batch_np(self, items: Sequence[bytes]) -> List[bool]:
        """Fully vectorized membership: all queries walk their runs in
        lockstep over a linearized table.

        Positions are tracked on an unwrapped axis: queries probe their
        quotient's second period (``q + slots``), whose cluster start lies
        within the first, and whose run start lies at most ``slots`` cells
        further right — so the prefix scans (cluster starts, occupied
        canonicals, run heads) only span two table periods, and the run
        head position array is the single-period ``flatnonzero`` shifted
        into three. Slot *values* along the walk come from masked modular
        indexing (``pos & (slots - 1)``; the slot count is a power of
        two), which reads the same torus the insert path writes without
        materializing tiled copies. Per-query state advances one run cell
        per iteration (runs are short at any practical load factor), and
        the active set is compacted each step so late iterations touch
        only the few queries still inside a long run. Queries whose
        canonical slot is unoccupied never enter the walk, which also
        makes the empty-table probe (no run heads anywhere) a natural
        no-op instead of an out-of-bounds head gather.
        """
        slots = self._slots
        smask = slots - 1
        quo, rem = self._qr_batch_np(items)
        occ = self._occ
        cont = self._cont
        shift = self._shift
        stored_rem = self._rem
        q = quo.astype(np.intp)
        hits = np.zeros(len(items), dtype=bool)
        alive = np.flatnonzero(occ[q])
        if not alive.size:
            return hits.tolist()
        # Cluster start: nearest non-shifted slot at or left of q + slots.
        idx2 = np.arange(2 * slots, dtype=np.int64)
        shift2 = np.concatenate((shift, shift))
        cs_all = np.maximum.accumulate(np.where(shift2, -1, idx2))
        occ_cum = np.cumsum(np.concatenate((occ, occ)))
        # q's run is the k-th of its cluster, k = occupied canonicals in
        # (cs, q + slots]; run heads are non-continuation non-empty cells.
        heads = ~cont & (occ | cont | shift)
        head_cum = np.cumsum(np.concatenate((heads, heads)))
        head_pos1 = np.flatnonzero(heads)
        head_pos = np.concatenate(
            (head_pos1, head_pos1 + slots, head_pos1 + 2 * slots)
        )
        qd = q[alive] + slots
        cs = cs_all[qd]
        k = occ_cum[qd] - occ_cum[cs]
        pos = head_pos[head_cum[cs] - 1 + k]
        rem_a = rem[alive]
        while True:
            stored = stored_rem[pos & smask]
            eq = stored == rem_a
            if eq.any():
                hits[alive[eq]] = True
            walking = ~eq & (stored < rem_a)  # runs are sorted
            nxt = pos + 1
            walking &= cont[nxt & smask]
            if not walking.any():
                return hits.tolist()
            alive = alive[walking]
            pos = nxt[walking]
            rem_a = rem_a[walking]

    def count_of(self, item: bytes) -> int:
        """Number of stored occurrences of ``item``'s remainder in its run
        (the counting-filter query)."""
        q, rem = self._qr(item)
        if not self._occ[q]:
            return 0
        pos = self._run_start(q)
        hits = 0
        while True:
            if self._rem[pos] == rem:
                hits += 1
            elif self._rem[pos] > rem:
                break
            pos = (pos + 1) % self._slots
            if not self._cont[pos]:
                break
        return hits

    def _delete(self, item: bytes) -> bool:
        q, rem = self._qr(item)
        if not self._occ[q] or not self._contains(item):
            return False
        cs = self._cluster_start(q)
        cells = self._decode_cluster(cs)
        cells.remove((q, rem))
        self._clear_range(cs, len(cells) + 1)
        for cell_q, cell_rem in cells:
            self._insert_qr(cell_q, cell_rem)
        self._count -= 1
        return True

    # -- cluster rebuild machinery ------------------------------------------------------

    def _decode_cluster(self, cs: int) -> "list[tuple[int, int]]":
        """Decode the cluster starting at ``cs`` into ordered
        (quotient, remainder) cells."""
        cells: "list[tuple[int, int]]" = []
        pending: "deque[int]" = deque()
        pos = cs
        cur_q = cs
        while True:
            if self._slot_empty(pos):
                break
            if pos != cs and not self._shift[pos]:
                break  # a new cluster head — not ours to touch
            if self._occ[pos]:
                pending.append(pos)
            if not self._cont[pos]:
                cur_q = pending.popleft()
            cells.append((cur_q, int(self._rem[pos])))
            pos = (pos + 1) % self._slots
            if pos == cs:
                break  # table fully cycled (pathological, guarded anyway)
        return cells

    def _clear_range(self, start: int, length: int) -> None:
        for i in range(length):
            pos = (start + i) % self._slots
            self._occ[pos] = False
            self._cont[pos] = False
            self._shift[pos] = False
            self._rem[pos] = 0

    # -- serialization -------------------------------------------------------------

    @staticmethod
    def _pack_bits(flags) -> bytes:
        return bitpack.pack_flags(flags)

    @staticmethod
    def _unpack_bits(data: bytes, count: int):
        return bitpack.unpack_flags(data, count)

    def to_bytes(self) -> bytes:
        out = bytearray()
        out += bitpack.pack_flags(self._occ)
        out += bitpack.pack_flags(self._cont)
        out += bitpack.pack_flags(self._shift)
        out += bitpack.pack_uniform(self._rem, self._r_bits)
        return bytes(out)

    @classmethod
    def expected_payload_bytes(cls, params: FilterParams) -> int:
        slots = quotient_geometry(params.capacity, params.load_factor)
        r_bits = remainder_bits_for_fpp(params.fpp)
        return 3 * (slots // 8) + (slots * r_bits + 7) // 8

    @classmethod
    def from_bytes(cls, params: FilterParams, payload: bytes) -> "QuotientFilter":
        filt = cls(params)
        bitmap_len = filt._slots // 8
        rem_len = (filt._slots * filt._r_bits + 7) // 8
        expected = 3 * bitmap_len + rem_len
        if len(payload) != expected:
            raise FilterSerializationError(
                f"quotient payload is {len(payload)} bytes, expected {expected}"
            )
        occ = bitpack.unpack_flags(payload[:bitmap_len], filt._slots)
        cont = bitpack.unpack_flags(payload[bitmap_len : 2 * bitmap_len], filt._slots)
        shift = bitpack.unpack_flags(
            payload[2 * bitmap_len : 3 * bitmap_len], filt._slots
        )
        try:
            rem = bitpack.unpack_uniform(
                payload[3 * bitmap_len :], filt._slots, filt._r_bits
            )
        except ValueError as exc:
            raise FilterSerializationError(str(exc)) from exc
        if np is not None:
            filt._occ[:] = occ
            filt._cont[:] = cont
            filt._shift[:] = shift
            filt._rem[:] = rem
            filt._count = int(np.count_nonzero(occ | cont | shift))
        else:
            filt._occ = occ
            filt._cont = cont
            filt._shift = shift
            filt._rem = rem
            filt._count = sum(
                1 for p in range(filt._slots) if not filt._slot_empty(p)
            )
        return filt
