"""Cuckoo filter (Fan, Andersen, Kaminsky, Mitzenmacher — CoNEXT 2014).

This is the structure the paper selects for its end-to-end experiments
("We utilize the Cuckoo filter with a 0.9 load factor, 0.1% FPP", §5.3).

Design points, following the original paper:

* Buckets of ``bucket_size`` (default 4) fingerprint slots; tables of a
  power-of-two number of buckets so partial-key cuckoo hashing's XOR
  alternate function stays closed: ``i2 = i1 XOR hash(fp)``.
* Fingerprint width chosen from the target FPP:
  ``f >= log2(2*bucket_size / fpp)``, so a lookup probing ``2b`` slots has
  false-positive probability about ``2b / 2^f <= fpp``.
* Insertion relocates up to ``max_kicks`` victims before declaring the
  table full (raising :class:`~repro.errors.FilterFullError`).
* Deletion removes one matching fingerprint from either candidate bucket —
  safe as long as the item was actually inserted, which is exactly the
  ICA-cache usage pattern of the paper.

Storage, batch kernels, and serialization live in the shared array-native
engine (:class:`repro.amq.bucketstore.BucketTableFilter`); this module
contributes only the power-of-two geometry and the XOR partner map.
"""

from __future__ import annotations

from repro.amq.base import FilterParams
from repro.amq.bucketstore import (
    DEFAULT_BUCKET_SIZE,
    DEFAULT_MAX_KICKS,
    BucketTableFilter,
)
from repro.amq.hashing import hash_int_np, np
from repro.amq.sizing import cuckoo_geometry

__all__ = ["CuckooFilter", "DEFAULT_BUCKET_SIZE", "DEFAULT_MAX_KICKS"]


class CuckooFilter(BucketTableFilter):
    """Partial-key cuckoo hash table over fingerprints."""

    name = "cuckoo"
    _RNG_SALT = 0xC0C0

    def _geometry(self, params: FilterParams) -> int:
        return cuckoo_geometry(params.capacity, params.load_factor, self._bucket_size)

    def _alt_index(self, index: int, fp: int) -> int:
        # hash the fingerprint (not the raw value) so sparse fingerprints
        # still spread over the whole table.
        return (index ^ self._fp_hash(fp)) % self._num_buckets

    def _alt_index_np(self, index, fp):
        return (index ^ hash_int_np(fp, self._params.seed)) % np.uint64(
            self._num_buckets
        )
