"""Hypergraph peeling engine for the XOR filter family.

Construction of an XOR filter (Graf & Lemire, 2020) peels the 3-uniform
hypergraph whose vertices are table slots and whose edges are the items'
``(h0, h1, h2)`` triples: repeatedly pop a degree-1 slot, match it to its
sole remaining item, remove that item's three incidences, and finally
assign fingerprints in reverse peel order. This module holds both sides
of that construction:

* :func:`peel_spec` — the executable specification: the verbatim scalar
  LIFO peel + reverse-assignment loops the original implementation wrote
  (and that ``tests/amq/_reference.py`` freezes). Every other path must
  produce its exact table.
* :func:`peel_arrays` — the array-native engine: vectorized degree and
  accumulator scatter (``np.bincount`` / ``np.bitwise_xor.at``) around a
  packed-record replay of the spec's peel loop.

**Why the peel decision loop itself stays sequential.** The *matching*
(which slot each item is peeled at) genuinely depends on the LIFO pop
order: two degree-1 slots of the same item race, and whichever pops
first claims the item and may push new singletons that preempt older
queue entries. A breadth-first "wave" peel produces a different matching
on such instances, and with it a different wire image. What does *not*
depend on order is the final table given the matching: each matched slot
is written exactly once, and any item whose matched slot appears among
another item's three slots was necessarily peeled later (its slot still
had degree >= 2), so the assignment is the unique solution of a
triangular XOR system — any topological order yields the same bytes,
which is why the engine is free to restructure *how* the same decisions
are computed (packed records, vectorized setup) but not *which*
decisions are made. ``docs/architecture.md`` spells out the argument.

The engine therefore vectorizes everything around the decision loop and
replays the loop itself over packed per-item records: one Python integer
``h0 | h1 << t | h2 << 2t | fp << 3t`` per item, XOR-accumulated per
slot, so a degree-1 slot's accumulator *is* its item's full record — no
per-edge triple lookups, and the peel stack already carries everything
the assignment pass needs.

:func:`scalar_spec_mode` forces the full scalar construction (scalar
hashing included); ``benchmarks/bench_fig3_throughput.py`` uses it as
the like-for-like scalar baseline the internal speedup gate compares
against.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.amq.hashing import np

_FORCE_SPEC = False


@contextmanager
def scalar_spec_mode() -> Iterator[None]:
    """Force every XOR-family construction in the block through the
    scalar specification path (scalar hashing, list-backed peel) — the
    benchmark baseline for the array engine's internal speedup."""
    global _FORCE_SPEC
    previous = _FORCE_SPEC
    _FORCE_SPEC = True
    try:
        yield
    finally:
        _FORCE_SPEC = previous


def scalar_spec_active() -> bool:
    """Whether :func:`scalar_spec_mode` is in effect."""
    return _FORCE_SPEC


def peel_spec(
    triples: Sequence[Tuple[int, int, int, int]], slots: int
) -> Optional[List[int]]:
    """Executable specification: scalar LIFO peel + reverse assignment.

    ``triples`` holds one ``(h0, h1, h2, fp)`` per (deduplicated) item.
    Returns the finished slot table, or ``None`` when a 2-core remains
    (non-peelable instance; the caller retries with a fresh construction
    seed). The pop order — ascending-singleton queue seed, LIFO pops,
    stale entries skipped, crossings pushed in ``h0, h1, h2`` order — is
    load-bearing: it fixes the slot->item matching and with it the wire
    image, so it must never change.
    """
    xor_of_items = [0] * slots
    degree = [0] * slots
    for idx, (h0, h1, h2, _fp) in enumerate(triples):
        for h in (h0, h1, h2):
            xor_of_items[h] ^= idx
            degree[h] += 1
    stack = []  # (slot, item index), in peel order
    queue = [s for s in range(slots) if degree[s] == 1]
    while queue:
        slot = queue.pop()
        if degree[slot] != 1:
            continue
        idx = xor_of_items[slot]
        stack.append((slot, idx))
        for h in triples[idx][:3]:
            xor_of_items[h] ^= idx
            degree[h] -= 1
            if degree[h] == 1:
                queue.append(h)
    if len(stack) != len(triples):
        return None  # 2-core remained; retry with another seed
    # Assign in reverse peel order: each peeled slot's three partners
    # already hold their final values (they were peeled earlier or never
    # matched), so one scalar pass closes the triangular system.
    table = [0] * slots
    for slot, idx in reversed(stack):
        h0, h1, h2, fp = triples[idx]
        table[slot] = fp ^ table[h0] ^ table[h1] ^ table[h2] ^ table[slot]
    return table


def peel_arrays(h0, h1, h2, fp, slots: int, fp_bits: int) -> Optional[List[int]]:
    """Array-native construction over uint64 hash arrays, byte-identical
    to :func:`peel_spec` on the same triples.

    Degree counts and per-slot record accumulators scatter in four numpy
    passes; the peel decision loop replays the spec's exact LIFO order
    over packed records. Slot indexes and fingerprint must fit one signed
    64-bit record (``3 * index_bits + fp_bits <= 62``) — true for every
    wire-planned geometry up to ~1M slots at fpp 1e-3; wider layouts take
    the specification path unchanged.
    """
    n = int(h0.shape[0])
    tb = max(1, (slots - 1).bit_length())
    if 3 * tb + fp_bits > 62:
        return peel_spec(
            list(zip(h0.tolist(), h1.tolist(), h2.tolist(), fp.tolist())), slots
        )
    s1, s2, s3 = tb, 2 * tb, 3 * tb
    h0i = h0.astype(np.int64)
    h1i = h1.astype(np.int64)
    h2i = h2.astype(np.int64)
    q = h0i | (h1i << s1) | (h2i << s2) | (fp.astype(np.int64) << s3)
    incident = np.concatenate((h0i, h1i, h2i))
    deg = np.bincount(incident, minlength=slots)
    qon = np.zeros(slots, dtype=np.int64)
    np.bitwise_xor.at(qon, incident, np.concatenate((q, q, q)))
    # The decision loop runs over plain lists: a degree-1 slot's
    # accumulator is its sole item's packed record, so each peel is three
    # list updates and zero lookups. flatnonzero seeds the queue in the
    # same ascending order as the spec's range scan.
    degl = deg.tolist()
    qonl = qon.tolist()
    queue = np.flatnonzero(deg == 1).tolist()
    pop = queue.pop
    push = queue.append
    order_slots: List[int] = []
    order_records: List[int] = []
    rec_slot = order_slots.append
    rec_record = order_records.append
    mask = (1 << tb) - 1
    peeled = 0
    while queue:
        s = pop()
        if degl[s] != 1:
            continue
        qv = qonl[s]
        rec_slot(s)
        rec_record(qv)
        peeled += 1
        a = qv & mask
        qonl[a] ^= qv
        d = degl[a] - 1
        degl[a] = d
        if d == 1:
            push(a)
        b = (qv >> s1) & mask
        qonl[b] ^= qv
        d = degl[b] - 1
        degl[b] = d
        if d == 1:
            push(b)
        c = (qv >> s2) & mask
        qonl[c] ^= qv
        d = degl[c] - 1
        degl[c] = d
        if d == 1:
            push(c)
        if peeled == n:
            break
    if peeled != n:
        return None
    table = [0] * slots
    for s, qv in zip(reversed(order_slots), reversed(order_records)):
        table[s] = (
            (qv >> s3)
            ^ table[qv & mask]
            ^ table[(qv >> s1) & mask]
            ^ table[(qv >> s2) & mask]
            ^ table[s]
        )
    return table
