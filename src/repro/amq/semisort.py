"""Semi-sorting bucket compression (Fan et al., CoNEXT '14, §5.2).

A 4-slot bucket stores an unordered *set* of fingerprints, so slot order is
free to exploit. Sorting the four fingerprints by their low nibble turns the
four nibbles into a non-decreasing 4-tuple, of which there are only
C(16+4-1, 4) = 3876 — indexable in 12 bits instead of 16. The high
``f - 4`` bits of each fingerprint are stored raw in the same sorted order,
giving ``4f - 4`` bits per bucket: exactly the "one bit per item" saving
the cuckoo-filter paper reports, and the margin that keeps a ~300-ICA
filter under the paper's 550-byte ClientHello budget (§5.2, Fig. 3-right).

Empty slots participate as fingerprint 0 (fingerprints are never 0), so a
bucket's occupancy round-trips exactly.
"""

from __future__ import annotations

from itertools import combinations_with_replacement
from typing import List, Sequence

from repro.amq import bitpack
from repro.amq.hashing import np

BUCKET_SIZE = 4
INDEX_BITS = 12
#: Minimum fingerprint width for the encoding (needs >= 0 high bits and
#: a meaningful low nibble).
MIN_FP_BITS = 5

_TUPLES: "list[tuple[int, int, int, int]]" = sorted(
    combinations_with_replacement(range(16), BUCKET_SIZE)
)
_TUPLE_TO_INDEX = {t: i for i, t in enumerate(_TUPLES)}

assert len(_TUPLES) == 3876  # fits in 12 bits

# Lazily-built numpy companions of the tuple tables: _NP_TUPLES maps a
# multiset index to its four sorted nibbles; _NP_RANK maps the 16-bit
# nibble concatenation (n0<<12 | n1<<8 | n2<<4 | n3) of a *sorted* tuple
# back to its index.
_NP_TUPLES = None
_NP_RANK = None


def _np_tables():
    global _NP_TUPLES, _NP_RANK
    if _NP_TUPLES is None:
        _NP_TUPLES = np.array(_TUPLES, dtype=np.uint64)
        keys = (
            (_NP_TUPLES[:, 0] << np.uint64(12))
            | (_NP_TUPLES[:, 1] << np.uint64(8))
            | (_NP_TUPLES[:, 2] << np.uint64(4))
            | _NP_TUPLES[:, 3]
        )
        rank = np.zeros(1 << 16, dtype=np.uint64)
        rank[keys.astype(np.intp)] = np.arange(len(_TUPLES), dtype=np.uint64)
        _NP_RANK = rank
    return _NP_TUPLES, _NP_RANK


def encoded_bucket_bits(fp_bits: int) -> int:
    """Bits per semi-sorted bucket: 12 + 4*(f-4) = 4f - 4."""
    if fp_bits < MIN_FP_BITS:
        raise ValueError(
            f"semi-sorting needs fingerprints of >= {MIN_FP_BITS} bits, "
            f"got {fp_bits}"
        )
    return INDEX_BITS + BUCKET_SIZE * (fp_bits - 4)


def encode_bucket(fingerprints: Sequence[int], fp_bits: int) -> "tuple[int, list[int]]":
    """Encode one bucket: returns (nibble-multiset index, high parts in
    nibble-sorted order)."""
    if len(fingerprints) != BUCKET_SIZE:
        raise ValueError(f"bucket must have {BUCKET_SIZE} slots")
    pairs = sorted((fp & 0xF, fp >> 4) for fp in fingerprints)
    nibbles = tuple(p[0] for p in pairs)
    highs = [p[1] for p in pairs]
    return _TUPLE_TO_INDEX[nibbles], highs


def decode_bucket(index: int, highs: Sequence[int], fp_bits: int) -> List[int]:
    """Inverse of :func:`encode_bucket`."""
    if not 0 <= index < len(_TUPLES):
        raise ValueError(f"semi-sort index {index} out of range")
    nibbles = _TUPLES[index]
    return [(high << 4) | nib for nib, high in zip(nibbles, highs)]


def pack_table(table, fp_bits: int) -> bytes:
    """Semi-sort-encode a flat slot table (len divisible by 4).

    Accepts a Python sequence or a uint64 array; the vectorized path
    (sort the (nibble, high) pairs per bucket as composite keys, look the
    sorted nibbles up in a 64 K rank table, pack the five fields as
    interleaved records) emits the same bytes as the scalar
    ``encode_bucket`` loop.
    """
    high_bits = fp_bits - 4
    # The composite sort key stores the high part in 32 bits, so very wide
    # fingerprints (tiny fpp) use the scalar emit loop instead.
    if (
        np is not None
        and isinstance(table, np.ndarray)
        and high_bits <= bitpack.MAX_FIELD_BITS
    ):
        u64 = np.uint64
        t = np.ascontiguousarray(table, dtype=u64).reshape(-1, BUCKET_SIZE)
        # Composite sort key: lexicographic (low nibble, high part), as
        # in ``sorted((fp & 0xF, fp >> 4) for fp in bucket)``.
        key = ((t & u64(0xF)) << u64(32)) | (t >> u64(4))
        key = np.sort(key, axis=1)
        lows = key >> u64(32)
        highs = key & u64(0xFFFFFFFF)
        nibble_key = (
            (lows[:, 0] << u64(12))
            | (lows[:, 1] << u64(8))
            | (lows[:, 2] << u64(4))
            | lows[:, 3]
        )
        _, rank = _np_tables()
        index = rank[nibble_key.astype(np.intp)]
        return bitpack.pack_records(
            [(index, INDEX_BITS)]
            + [(np.ascontiguousarray(highs[:, j]), high_bits) for j in range(4)]
        )
    if np is not None and isinstance(table, np.ndarray):
        table = [int(fp) for fp in table]
    acc = 0
    acc_bits = 0
    out = bytearray()

    def emit(value: int, bits: int) -> None:
        nonlocal acc, acc_bits
        acc |= value << acc_bits
        acc_bits += bits
        while acc_bits >= 8:
            out.append(acc & 0xFF)
            acc >>= 8
            acc_bits -= 8

    for start in range(0, len(table), BUCKET_SIZE):
        index, highs = encode_bucket(table[start : start + BUCKET_SIZE], fp_bits)
        emit(index, INDEX_BITS)
        for high in highs:
            emit(high, high_bits)
    if acc_bits:
        out.append(acc & 0xFF)
    return bytes(out)


def unpack_table(data: bytes, num_buckets: int, fp_bits: int) -> List[int]:
    """Inverse of :func:`pack_table` (always returns a list of ints; use
    :func:`unpack_table_array` on the array-native path)."""
    table = unpack_table_array(data, num_buckets, fp_bits)
    if np is not None and isinstance(table, np.ndarray):
        return [int(fp) for fp in table]
    return table


def unpack_table_array(data: bytes, num_buckets: int, fp_bits: int):
    """Decode a semi-sorted payload into a flat slot table (uint64 array
    when numpy is available, else a list)."""
    high_bits = fp_bits - 4
    if np is not None and high_bits <= bitpack.MAX_FIELD_BITS:
        if len(data) < packed_size_bytes(num_buckets, fp_bits):
            raise ValueError("semi-sorted payload truncated")
        fields = bitpack.unpack_records(
            data, num_buckets, [INDEX_BITS] + [high_bits] * BUCKET_SIZE
        )
        index = fields[0]
        if index.size and int(index.max()) >= len(_TUPLES):
            raise ValueError(
                f"semi-sort index {int(index.max())} out of range"
            )
        tuples, _ = _np_tables()
        nibbles = tuples[index.astype(np.intp)]  # (num_buckets, 4)
        table = np.empty(num_buckets * BUCKET_SIZE, dtype=np.uint64)
        for j in range(BUCKET_SIZE):
            table[j::BUCKET_SIZE] = (fields[1 + j] << np.uint64(4)) | nibbles[:, j]
        return table
    acc = 0
    acc_bits = 0
    pos = 0

    def take(bits: int) -> int:
        nonlocal acc, acc_bits, pos
        while acc_bits < bits:
            if pos >= len(data):
                raise ValueError("semi-sorted payload truncated")
            acc |= data[pos] << acc_bits
            acc_bits += 8
            pos += 1
        value = acc & ((1 << bits) - 1)
        acc >>= bits
        acc_bits -= bits
        return value

    table: List[int] = []
    for _ in range(num_buckets):
        index = take(INDEX_BITS)
        highs = [take(high_bits) for _ in range(BUCKET_SIZE)]
        table.extend(decode_bucket(index, highs, fp_bits))
    return table


def packed_size_bytes(num_buckets: int, fp_bits: int) -> int:
    return (num_buckets * encoded_bucket_bits(fp_bits) + 7) // 8
