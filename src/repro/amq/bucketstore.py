"""Array-native storage engine for the cuckoo-style bucket filters.

:class:`BucketTableFilter` is the shared core of
:class:`~repro.amq.cuckoo.CuckooFilter` and
:class:`~repro.amq.vacuum.VacuumFilter` — the two structures differ only
in their table geometry and alternate-index map, which subclasses supply
via ``_geometry``/``_alt_index``/``_alt_index_np``.

Storage contract
----------------

The table is a single preallocated ``uint64`` array of
``num_buckets * bucket_size`` slots (``0`` marks empty; fingerprints are
never 0), with a ``(num_buckets, bucket_size)`` reshaped *view* kept
alongside so batch kernels index buckets without any per-call
materialization. Scalar operations index the same array, so both paths
always observe one table. When numpy is missing the storage degrades to
a plain list and every batch method falls back to the scalar loops.

Bulk insert
-----------

``_insert_batch`` places items chunk by chunk. Within a chunk, an item
is *safe* when its first-choice bucket appears exactly once among every
candidate bucket (``i1`` and ``i2``) of the whole chunk **and** that
bucket has a free slot: no other chunk item can touch the bucket, so all
safe items can be written in one vectorized scatter, order-free, into
each bucket's first empty slot — exactly where the scalar loop would
have put them. The remaining residue is placed by the scalar
first-empty-slot walk in batch order; a residue item's candidate
buckets never host a safe item (safe buckets are referenced exactly
once chunk-wide), so the walk observes exactly the state a scalar loop
would at that item's turn.

Evictions are where out-of-order placement could diverge from the
scalar loop: a kick chain roams arbitrary buckets, including buckets
holding a safe item from a *later* batch position that a scalar run
would not have inserted yet. ``_kick_chunk`` therefore runs the chain
against the scalar view: a bucket owning an early-placed safe item
beyond the current position is treated as having that slot free — the
chain ends there exactly as the scalar chain would, the displaced safe
item is *demoted* back into the ordered walk (re-inserted when the walk
reaches its position), and the rng consumes the same draws in the same
order as ``_kick``. A ``FilterFullError`` mid-chunk unwinds the failed
chain, removes the not-yet-legitimate early placements, and carries the
exact prefix ``inserted_count`` — the PR-1 rng-determinism and PR-3
transactional-rollback contracts hold byte-for-byte.
"""

from __future__ import annotations

import heapq
import random
from typing import ClassVar, List, Sequence

from repro.amq import bitpack, semisort
from repro.amq.base import AMQFilter, FilterParams
from repro.amq.hashing import (
    VECTOR_MIN_BATCH,
    fingerprint,
    hash64,
    hash64_multi_np,
    hash_int,
    np,
)
from repro.amq.sizing import fingerprint_bits_for_fpp
from repro.errors import (
    FilterDeleteError,
    FilterFullError,
    FilterSerializationError,
)

DEFAULT_BUCKET_SIZE = 4
DEFAULT_MAX_KICKS = 500

#: Upper bound on the vectorized-placement chunk; chunks much larger
#: than the table raise the candidate-collision rate (fewer safe items),
#: much smaller ones pay the numpy call overhead per few items.
MAX_PLACEMENT_CHUNK = 4096


class BucketTableFilter(AMQFilter):
    """Two-choice bucket table over fingerprints (shared engine)."""

    #: XOR'd into ``params.seed`` for the eviction rng so cuckoo and
    #: vacuum twins built from one seed do not share kick sequences.
    _RNG_SALT: ClassVar[int] = 0

    supports_deletion = True

    def __init__(
        self,
        params: FilterParams,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        max_kicks: int = DEFAULT_MAX_KICKS,
        semi_sort: bool = True,
    ) -> None:
        super().__init__(params)
        self._bucket_size = bucket_size
        self._max_kicks = max_kicks
        self._fp_bits = fingerprint_bits_for_fpp(params.fpp, bucket_size)
        self._semi_sort = (
            semi_sort
            and bucket_size == semisort.BUCKET_SIZE
            and self._fp_bits >= semisort.MIN_FP_BITS
        )
        self._num_buckets = self._geometry(params)
        self._alloc_table()
        self._rng = random.Random(params.seed ^ self._RNG_SALT)
        # hash_int(fp, seed) memo for the alternate-index maps: the kick
        # loops rehash the same few-thousand distinct fingerprints
        # constantly, and the map is pure in (fp, seed).
        self._fp_hash_cache: "dict[int, int]" = {}

    def _alloc_table(self) -> None:
        slots = self._num_buckets * self._bucket_size
        if np is not None:
            # Flat table: 0 marks an empty slot (fingerprints are never 0).
            self._table = np.zeros(slots, dtype=np.uint64)
            self._bucket_view = self._table.reshape(
                self._num_buckets, self._bucket_size
            )
        else:
            self._table = [0] * slots
            self._bucket_view = None

    # -- subclass hooks --------------------------------------------------------

    def _geometry(self, params: FilterParams) -> int:
        """Number of buckets for ``params`` (subclass-specific)."""
        raise NotImplementedError

    def _alt_index(self, index: int, fp: int) -> int:
        """Partner bucket of ``index`` for fingerprint ``fp``."""
        raise NotImplementedError

    def _alt_index_np(self, index, fp):
        """Vectorized :meth:`_alt_index` over uint64 arrays."""
        raise NotImplementedError

    # -- geometry accessors ----------------------------------------------------

    @property
    def bucket_size(self) -> int:
        return self._bucket_size

    @property
    def num_buckets(self) -> int:
        return self._num_buckets

    @property
    def fingerprint_bits(self) -> int:
        return self._fp_bits

    @property
    def semi_sort(self) -> bool:
        return self._semi_sort

    def _fingerprint(self, item: bytes) -> int:
        return fingerprint(item, self._fp_bits, self._params.seed)

    def _fp_hash(self, fp: int) -> int:
        """Memoized ``hash_int(fp, seed)`` for the alternate-index maps."""
        cache = self._fp_hash_cache
        h = cache.get(fp)
        if h is None:
            h = cache[fp] = hash_int(fp, self._params.seed)
        return h

    def _index1(self, item: bytes) -> int:
        return hash64(item, self._params.seed) % self._num_buckets

    # -- scalar bucket helpers -------------------------------------------------

    def _bucket_slice(self, index: int) -> "tuple[int, int]":
        start = index * self._bucket_size
        return start, start + self._bucket_size

    def _bucket_insert(self, index: int, fp: int) -> bool:
        start, end = self._bucket_slice(index)
        for slot in range(start, end):
            if self._table[slot] == 0:
                self._table[slot] = fp
                return True
        return False

    def _bucket_contains(self, index: int, fp: int) -> bool:
        start, end = self._bucket_slice(index)
        return fp in self._table[start:end]

    def _bucket_delete(self, index: int, fp: int) -> bool:
        start, end = self._bucket_slice(index)
        for slot in range(start, end):
            if self._table[slot] == fp:
                self._table[slot] = 0
                return True
        return False

    def _bucket_find_slot(self, index: int, fp: int) -> "int | None":
        start, end = self._bucket_slice(index)
        for slot in range(start, end):
            if self._table[slot] == fp:
                return slot
        return None

    # -- AMQFilter interface ---------------------------------------------------

    def _insert(self, item: bytes) -> None:
        fp = self._fingerprint(item)
        i1 = self._index1(item)
        i2 = self._alt_index(i1, fp)
        self._insert_fp(fp, i1, i2)

    def _insert_fp(self, fp: int, i1: int, i2: int) -> None:
        """Place a precomputed fingerprint (shared by insert/insert_batch
        so both paths drive the eviction rng identically)."""
        if self._bucket_insert(i1, fp) or self._bucket_insert(i2, fp):
            self._count += 1
            return
        self._kick(fp, i1, i2)

    def _kick(self, fp: int, i1: int, i2: int) -> None:
        # Evict: pick one of the two candidate buckets and relocate.
        index = self._rng.choice((i1, i2))
        path: List[int] = []
        for _ in range(self._max_kicks):
            start, _ = self._bucket_slice(index)
            victim_slot = start + self._rng.randrange(self._bucket_size)
            path.append(victim_slot)
            victim_fp = int(self._table[victim_slot])
            self._table[victim_slot] = fp
            fp = victim_fp
            index = self._alt_index(index, fp)
            if self._bucket_insert(index, fp):
                self._count += 1
                return
        # Transactional failure: every kick step was a swap, so replaying
        # the swaps in reverse restores the table exactly — a failed
        # insert stores nothing and loses nothing (previously a stored
        # copy of some *other* item was silently dropped here, which the
        # stateful suite caught as a false negative).
        for slot in reversed(path):
            prior = int(self._table[slot])
            self._table[slot] = fp
            fp = prior
        raise FilterFullError(
            f"{self.name} filter insert failed after {self._max_kicks} kicks "
            f"(load factor {self.load_factor():.3f})"
        )

    def _contains(self, item: bytes) -> bool:
        fp = self._fingerprint(item)
        i1 = self._index1(item)
        if self._bucket_contains(i1, fp):
            return True
        return self._bucket_contains(self._alt_index(i1, fp), fp)

    def _delete(self, item: bytes) -> bool:
        fp = self._fingerprint(item)
        i1 = self._index1(item)
        if self._bucket_delete(i1, fp):
            self._count -= 1
            return True
        if self._bucket_delete(self._alt_index(i1, fp), fp):
            self._count -= 1
            return True
        return False

    def _delete_batch_strict(self, items: Sequence[bytes]) -> None:
        # Bucket tables remember *which* bucket stored a fingerprint, so
        # the generic unwind (re-insert the deleted prefix) is not
        # byte-identical: a copy deleted from the alternate bucket would
        # re-land in the primary one. Record the exact (slot, fp) pairs
        # and restore them directly — no hashing, no kicks, no rng draws.
        undo: List["tuple[int, int]"] = []
        for index, item in enumerate(items):
            fp = self._fingerprint(item)
            i1 = self._index1(item)
            slot = self._bucket_find_slot(i1, fp)
            if slot is None:
                slot = self._bucket_find_slot(self._alt_index(i1, fp), fp)
            if slot is None:
                for prior_slot, prior_fp in reversed(undo):
                    self._table[prior_slot] = prior_fp
                    self._count += 1
                raise FilterDeleteError(
                    f"strict delete batch item {index} is not stored",
                    missing_index=index,
                )
            self._table[slot] = 0
            self._count -= 1
            undo.append((slot, fp))

    # -- batch kernels ---------------------------------------------------------

    def _batch_candidates(self, items: Sequence[bytes]):
        """Vectorized (fingerprint, bucket1, bucket2) triples — identical
        values to the scalar ``_fingerprint``/``_index1``/``_alt_index``.
        The fingerprint and index hashes share one fused byte decode."""
        seed = self._params.seed
        fp_h, idx_h = hash64_multi_np(items, (seed ^ 0xF1A9, seed))
        fps = fp_h & np.uint64((1 << self._fp_bits) - 1)
        fps[fps == 0] = 1
        i1 = idx_h % np.uint64(self._num_buckets)
        return fps, i1, self._alt_index_np(i1, fps)

    def _insert_batch(self, items: Sequence[bytes]) -> None:
        if np is None or len(items) < VECTOR_MIN_BATCH:
            return super()._insert_batch(items)
        fps, i1s, i2s = self._batch_candidates(items)
        # Bucket indices fit in int63, so the uint64->int64 view is a free
        # reinterpretation that fancy indexing and bincount accept.
        i1v = i1s.view(np.int64)
        i2v = i2s.view(np.int64)
        n = len(items)
        chunk = max(VECTOR_MIN_BATCH, min(MAX_PLACEMENT_CHUNK, self._num_buckets))
        base = 0
        while base < n:
            end = min(n, base + chunk)
            self._insert_chunk(fps, i1v, i2v, base, end)
            base = end

    def _insert_chunk(self, fps, i1s, i2s, base, end) -> None:
        nb = self._num_buckets
        c_i1 = i1s[base:end]
        cat = np.concatenate((c_i1, i2s[base:end]))
        if 8 * cat.size >= nb:
            counts = np.bincount(cat, minlength=nb)
            unique_i1 = counts[c_i1] == 1
        else:
            # Sparse chunk over a huge table: duplicate detection by sort
            # beats zeroing a bucket-sized counts array.
            ordered = np.sort(cat)
            dups = ordered[1:][ordered[1:] == ordered[:-1]]
            unique_i1 = ~np.isin(c_i1, dups)
        rows = self._bucket_view[c_i1]
        empty = rows == 0
        safe = unique_i1 & empty.any(axis=1)
        safe_pos = np.flatnonzero(safe)
        if safe_pos.size:
            safe_buckets = c_i1[safe_pos]
            # First empty slot per bucket — the slot the scalar walk fills
            # (argmax finds the first True, so delete holes are reused).
            first_free = empty[safe_pos].argmax(axis=1)
            self._bucket_view[safe_buckets, first_free] = fps[base:end][safe_pos]
            self._count += int(safe_pos.size)
        else:
            safe_buckets = first_free = None
        residue = np.flatnonzero(~safe).tolist()
        if residue:
            self._place_residue(
                fps[base:end].tolist(),
                c_i1.tolist(),
                i2s[base:end].tolist(),
                base,
                residue,
                safe_pos,
                safe_buckets,
                first_free,
            )

    def _place_residue(
        self, c_fps, c_i1, c_i2, base, residue, safe_pos, safe_buckets, first_free
    ) -> None:
        """Walk the non-safe chunk items in batch order, placing each by
        the scalar first-empty-slot rule; safe items demoted by a kick
        chain re-enter the walk at their original position. The chunk's
        fingerprint/bucket values arrive as plain lists — the walk is
        scalar Python, so per-item numpy element access would dominate."""
        table = self._table
        bucket_size = self._bucket_size
        owners = None  # built lazily: {bucket: (position, slot-in-bucket)}
        pending: List[int] = []  # demoted safe positions (min-heap)
        res_iter = iter(residue)
        next_res = next(res_iter, None)
        while next_res is not None or pending:
            if pending and (next_res is None or pending[0] < next_res):
                pos = heapq.heappop(pending)
            else:
                pos = next_res
                next_res = next(res_iter, None)
            fp = c_fps[pos]
            placed = False
            for b in (c_i1[pos], c_i2[pos]):
                start = b * bucket_size
                for slot in range(start, start + bucket_size):
                    if not table[slot]:
                        table[slot] = fp
                        placed = True
                        break
                if placed:
                    break
            if placed:
                self._count += 1
                continue
            if owners is None:
                if safe_pos is not None and safe_pos.size:
                    owners = {
                        b: (p, s)
                        for b, p, s in zip(
                            safe_buckets.tolist(),
                            safe_pos.tolist(),
                            first_free.tolist(),
                        )
                    }
                else:
                    owners = {}
            try:
                demoted = self._kick_chunk(
                    fp, c_i1[pos], c_i2[pos], pos, owners
                )
            except FilterFullError as exc:
                # Early-placed safe items beyond the failing position are
                # placements a scalar run never made: remove them so the
                # table holds exactly the successfully-inserted prefix
                # (plus the failed chain's unwound swaps).
                stale = [
                    (b, s) for b, (p, s) in owners.items() if p > pos
                ]
                for b, s in stale:
                    table[b * bucket_size + s] = 0
                self._count -= len(stale)
                exc.inserted_count = base + pos
                raise
            self._count += 1
            if demoted is not None:
                heapq.heappush(pending, demoted)
                self._count -= 1

    def _kick_chunk(self, fp, i1, i2, frontier, owners):
        """:meth:`_kick` against the scalar view of a partially-scattered
        chunk: identical rng draws and swaps, except that a bucket owning
        an early-placed safe item from a position after ``frontier`` is
        seen as the scalar loop would — with that slot still free. The
        chain ends there, the safe item is demoted (its position is
        returned for re-insertion), and its slot takes the displaced
        fingerprint, exactly as the pure scalar execution."""
        table = self._table
        bucket_size = self._bucket_size
        rng = self._rng
        index = rng.choice((i1, i2))
        path: List[int] = []
        for _ in range(self._max_kicks):
            start = index * bucket_size
            victim_slot = start + rng.randrange(bucket_size)
            path.append(victim_slot)
            victim_fp = int(table[victim_slot])
            table[victim_slot] = fp
            fp = victim_fp
            index = self._alt_index(index, fp)
            entry = owners.get(index)
            if entry is not None and entry[0] > frontier:
                # Scalar state has this safe slot empty: the chain ends
                # here; the early-placed item yields it and re-queues.
                table[index * bucket_size + entry[1]] = fp
                del owners[index]
                return entry[0]
            if self._bucket_insert(index, fp):
                return None
        for slot in reversed(path):
            prior = int(table[slot])
            table[slot] = fp
            fp = prior
        raise FilterFullError(
            f"{self.name} filter insert failed after {self._max_kicks} kicks "
            f"(load factor {self.load_factor():.3f})"
        )

    def _contains_batch(self, items: Sequence[bytes]) -> List[bool]:
        if np is None or len(items) < VECTOR_MIN_BATCH:
            return super()._contains_batch(items)
        fps, i1, i2 = self._batch_candidates(items)
        buckets = self._bucket_view
        want = fps[:, None]
        hit = (buckets[i1.view(np.int64)] == want).any(axis=1)
        hit |= (buckets[i2.view(np.int64)] == want).any(axis=1)
        return hit.tolist()

    def _delete_batch(self, items: Sequence[bytes]) -> List[bool]:
        if np is None or len(items) < VECTOR_MIN_BATCH:
            return super()._delete_batch(items)
        # Deletions are order-dependent under duplicate fingerprints, so
        # placement stays scalar over the vectorized candidates.
        fps, i1s, i2s = self._batch_candidates(items)
        fps_l = fps.tolist()
        i1_l = i1s.tolist()
        i2_l = i2s.tolist()
        table = self._table
        bucket_size = self._bucket_size
        out: List[bool] = []
        for index in range(len(items)):
            fp = fps_l[index]
            removed = False
            for b in (i1_l[index], i2_l[index]):
                start = b * bucket_size
                for slot in range(start, start + bucket_size):
                    if table[slot] == fp:
                        table[slot] = 0
                        removed = True
                        break
                if removed:
                    break
            if removed:
                self._count -= 1
            out.append(removed)
        return out

    # -- sizing ----------------------------------------------------------------

    def slot_count(self) -> int:
        return self._num_buckets * self._bucket_size

    def effective_fpp(self) -> float:
        """A negative lookup probes 2 buckets (2b slots); each occupied
        slot matches with probability 2^-f, so at occupancy alpha the
        rate is ``1 - (1 - 2^-f)^(2 b alpha)``."""
        alpha = self.load_factor()
        per_slot = 2.0 ** -self._fp_bits
        return 1.0 - (1.0 - per_slot) ** (2 * self._bucket_size * alpha)

    def size_in_bytes(self) -> int:
        if self._semi_sort:
            return semisort.packed_size_bytes(self._num_buckets, self._fp_bits)
        total_bits = self.slot_count() * self._fp_bits
        return (total_bits + 7) // 8

    # -- serialization ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Pack the table: semi-sorted bucket encoding when enabled,
        otherwise ``fingerprint_bits`` per slot, LSB-first. Both codecs
        read the table array directly (no per-slot Python loop)."""
        if self._semi_sort:
            return semisort.pack_table(self._table, self._fp_bits)
        return bitpack.pack_uniform(self._table, self._fp_bits)

    @classmethod
    def from_bytes(
        cls,
        params: FilterParams,
        payload: bytes,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        max_kicks: int = DEFAULT_MAX_KICKS,
        semi_sort: bool = True,
    ) -> "BucketTableFilter":
        filt = cls(
            params, bucket_size=bucket_size, max_kicks=max_kicks, semi_sort=semi_sort
        )
        expected = filt.size_in_bytes()
        if len(payload) != expected:
            raise FilterSerializationError(
                f"{cls.name} payload is {len(payload)} bytes, expected {expected}"
            )
        total_slots = filt.slot_count()
        try:
            if filt._semi_sort:
                table = semisort.unpack_table_array(
                    payload, filt._num_buckets, filt._fp_bits
                )
            else:
                table = bitpack.unpack_uniform(payload, total_slots, filt._fp_bits)
        except ValueError as exc:
            raise FilterSerializationError(str(exc)) from exc
        if np is not None:
            filt._table[:] = table
            filt._count = int(np.count_nonzero(filt._table))
        else:
            filt._table = list(table)
            filt._count = sum(1 for fp in filt._table if fp)
        return filt
