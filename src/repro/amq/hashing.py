"""64-bit hashing primitives shared by all AMQ filters.

Filters need fast, well-mixed, *stable* hashes (Python's builtin ``hash`` is
salted per process and therefore unusable for a wire-serialized filter that a
remote peer must query). We layer a splitmix64 finalizer on top of FNV-1a,
which empirically passes the avalanche needs of fingerprint extraction at the
scales this package operates on (hundreds to millions of keys).

All arithmetic is modulo 2**64.
"""

from __future__ import annotations

from typing import Iterator, Sequence

try:  # numpy is a declared dependency, but every path degrades gracefully
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    np = None  # type: ignore[assignment]

#: Whether the vectorized batch-hashing kernels are available.
HAVE_NUMPY = np is not None

MASK64 = (1 << 64) - 1

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

# Odd constants from the splitmix64 reference implementation.
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_MIX1 = 0xBF58476D1CE4E5B9
_SM_MIX2 = 0x94D049BB133111EB


def fnv1a64(data: bytes, seed: int = 0) -> int:
    """Plain FNV-1a over ``data``, optionally perturbed by ``seed``."""
    h = (_FNV_OFFSET ^ (seed * _SM_GAMMA)) & MASK64
    for byte in data:
        h = ((h ^ byte) * _FNV_PRIME) & MASK64
    return h


def splitmix64(x: int) -> int:
    """The splitmix64 finalizer: a strong 64-bit bijective mixer."""
    x = (x + _SM_GAMMA) & MASK64
    x = ((x ^ (x >> 30)) * _SM_MIX1) & MASK64
    x = ((x ^ (x >> 27)) * _SM_MIX2) & MASK64
    return x ^ (x >> 31)


def hash64(data: bytes, seed: int = 0) -> int:
    """Stable 64-bit hash of ``data`` for a given ``seed``."""
    return splitmix64(fnv1a64(data, seed))


def hash_int(value: int, seed: int = 0) -> int:
    """Stable 64-bit hash of a non-negative integer."""
    return splitmix64((value ^ (seed * _SM_GAMMA)) & MASK64)


def double_hashes(data: bytes, count: int, seed: int = 0) -> Iterator[int]:
    """Yield ``count`` derived 64-bit hashes via Kirsch-Mitzenmacher
    double hashing: ``g_i = h1 + i*h2 + i^2`` (the quadratic term avoids
    the classic degradation when ``h2`` is small modulo the table size).
    """
    h1 = hash64(data, seed)
    h2 = hash64(data, seed + 0x51ED)
    # Force h2 odd so it is invertible modulo any power-of-two table size.
    h2 |= 1
    for i in range(count):
        yield (h1 + i * h2 + i * i) & MASK64


# ---------------------------------------------------------------------------
# Vectorized batch kernels
#
# The batch API of :class:`repro.amq.base.AMQFilter` hashes every item of a
# batch in one pass: the FNV-1a byte loop runs as ``len(item)`` vector
# operations over the whole batch instead of ``len(batch) * len(item)``
# interpreter steps. All kernels produce bit-identical values to their
# scalar counterparts above — the wire image a remote peer queries must not
# depend on which code path built it.
# ---------------------------------------------------------------------------

#: Below this batch size the numpy round-trip costs more than it saves and
#: filters fall back to their scalar loops.
VECTOR_MIN_BATCH = 32


def _fnv1a64_multi_np(
    items: Sequence[bytes], seeds: Sequence[int], length: int
) -> "np.ndarray":
    """Vectorized FNV-1a over same-length items for several seeds at once
    (uint64, wrapping): shape ``(len(seeds), len(items))``.

    A seed only perturbs the initial state, so every seed shares one byte
    decode and one pass of the byte recurrence — the decode (join +
    transpose into byte-major order) is the expensive part at batch
    scale, and the filters all need two or three seeds per operation
    (fingerprint + index, or the xor filter's three slot hashes).
    """
    u64 = np.uint64
    n = len(items)
    buf = np.frombuffer(b"".join(items), dtype=np.uint8)
    # Byte-major (length, n) C-contiguous: step j of the FNV recurrence
    # streams one contiguous row instead of a stride-``length`` gather.
    # The bytes stay uint8 and widen through one reused scratch row per
    # step — cheaper than materializing the whole matrix as uint64.
    cols = np.ascontiguousarray(buf.reshape(n, length).T)
    h = np.empty((len(seeds), n), dtype=u64)
    for k, seed in enumerate(seeds):
        h[k] = u64((_FNV_OFFSET ^ (seed * _SM_GAMMA)) & MASK64)
    prime = u64(_FNV_PRIME)
    row = np.empty(n, dtype=u64)
    for j in range(length):
        np.copyto(row, cols[j], casting="unsafe")
        np.bitwise_xor(h, row, out=h)
        np.multiply(h, prime, out=h)
    return h


def _fnv1a64_np(items: Sequence[bytes], seed: int, length: int) -> "np.ndarray":
    """Vectorized FNV-1a over same-length items (uint64, wrapping)."""
    return _fnv1a64_multi_np(items, (seed,), length)[0]


def splitmix64_np(x: "np.ndarray") -> "np.ndarray":
    """Vectorized :func:`splitmix64` over a uint64 array."""
    u64 = np.uint64
    x = x + u64(_SM_GAMMA)
    x = (x ^ (x >> u64(30))) * u64(_SM_MIX1)
    x = (x ^ (x >> u64(27))) * u64(_SM_MIX2)
    return x ^ (x >> u64(31))


def hash64_multi_np(items: Sequence[bytes], seeds: Sequence[int]) -> "np.ndarray":
    """Vectorized :func:`hash64` for several seeds over one byte decode:
    row ``k`` holds ``hash64(item, seeds[k])`` for every item, batch
    order. Mixed-length batches are hashed per length group (the hot
    paths only ever see uniform 32-byte fingerprints, so the grouping is
    free there).
    """
    n = len(items)
    if n == 0:
        return np.empty((len(seeds), 0), dtype=np.uint64)
    first_len = len(items[0])
    lens = np.fromiter(map(len, items), dtype=np.intp, count=n)
    if (lens == first_len).all():
        return splitmix64_np(_fnv1a64_multi_np(items, seeds, first_len))
    out = np.empty((len(seeds), n), dtype=np.uint64)
    by_length: "dict[int, list[int]]" = {}
    for idx, item in enumerate(items):
        by_length.setdefault(len(item), []).append(idx)
    for length, idxs in by_length.items():
        group = [items[i] for i in idxs]
        out[:, idxs] = splitmix64_np(_fnv1a64_multi_np(group, seeds, length))
    return out


def hash64_np(items: Sequence[bytes], seed: int = 0) -> "np.ndarray":
    """Vectorized :func:`hash64`: one uint64 per item, batch order."""
    return hash64_multi_np(items, (seed,))[0]


def xor_hashes_np(items: Sequence[bytes], seed: int, third: int, fp_bits: int):
    """Fused xor-filter hash derivation: one byte decode (via
    :func:`hash64_multi_np`'s shared FNV kernel) yields all four per-item
    values — the three slot indexes ``h0``/``h1``/``h2`` (one per table
    third) and the ``fp_bits``-wide fingerprint — as uint64 arrays,
    bit-identical to the scalar derivation in ``XorFilter._hashes``.
    ``seed`` is the already-combined filter/construction seed. Both the
    build engine (:mod:`repro.amq.peel`) and ``_contains_batch`` call
    this, so probe and construction can never drift apart.
    """
    u64 = np.uint64
    base = hash64_np(items, seed)
    t = u64(third)
    h0 = base % t
    h1 = t + splitmix64_np(base ^ u64(0xA5A5)) % t
    h2 = u64(2) * t + splitmix64_np(base ^ u64(0x5A5A)) % t
    fp = splitmix64_np(base ^ u64(0xF0F0)) & u64((1 << fp_bits) - 1)
    return h0, h1, h2, fp


def hash_int_np(values: "np.ndarray", seed: int = 0) -> "np.ndarray":
    """Vectorized :func:`hash_int` over a uint64 array."""
    return splitmix64_np(values ^ np.uint64((seed * _SM_GAMMA) & MASK64))


def double_hashes_np(items: Sequence[bytes], count: int, seed: int = 0):
    """Vectorized :func:`double_hashes`: a list of ``count`` uint64 arrays,
    array ``i`` holding hash ``g_i`` of every item (bit-identical to the
    scalar generator, modulo 2^64)."""
    u64 = np.uint64
    h1, h2 = hash64_multi_np(items, (seed, seed + 0x51ED))
    h2 = h2 | u64(1)
    return [h1 + u64(i) * h2 + u64(i * i) for i in range(count)]


def fingerprint_np(items: Sequence[bytes], bits: int, seed: int = 0) -> "np.ndarray":
    """Vectorized :func:`fingerprint` (zero remapped to 1, as scalar)."""
    if not 1 <= bits <= 32:
        raise ValueError(f"fingerprint width must be in [1, 32], got {bits}")
    fp = hash64_np(items, seed ^ 0xF1A9) & np.uint64((1 << bits) - 1)
    fp[fp == 0] = 1
    return fp


def fingerprint(data: bytes, bits: int, seed: int = 0) -> int:
    """Extract a non-zero ``bits``-wide fingerprint of ``data``.

    Zero is reserved as the empty-slot marker in cuckoo-style tables, so a
    fingerprint that truncates to zero is remapped to 1 (a standard trick
    that biases epsilon negligibly).
    """
    if not 1 <= bits <= 32:
        raise ValueError(f"fingerprint width must be in [1, 32], got {bits}")
    fp = hash64(data, seed ^ 0xF1A9) & ((1 << bits) - 1)
    return fp if fp else 1
