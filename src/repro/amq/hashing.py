"""64-bit hashing primitives shared by all AMQ filters.

Filters need fast, well-mixed, *stable* hashes (Python's builtin ``hash`` is
salted per process and therefore unusable for a wire-serialized filter that a
remote peer must query). We layer a splitmix64 finalizer on top of FNV-1a,
which empirically passes the avalanche needs of fingerprint extraction at the
scales this package operates on (hundreds to millions of keys).

All arithmetic is modulo 2**64.
"""

from __future__ import annotations

from typing import Iterator

MASK64 = (1 << 64) - 1

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

# Odd constants from the splitmix64 reference implementation.
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_MIX1 = 0xBF58476D1CE4E5B9
_SM_MIX2 = 0x94D049BB133111EB


def fnv1a64(data: bytes, seed: int = 0) -> int:
    """Plain FNV-1a over ``data``, optionally perturbed by ``seed``."""
    h = (_FNV_OFFSET ^ (seed * _SM_GAMMA)) & MASK64
    for byte in data:
        h = ((h ^ byte) * _FNV_PRIME) & MASK64
    return h


def splitmix64(x: int) -> int:
    """The splitmix64 finalizer: a strong 64-bit bijective mixer."""
    x = (x + _SM_GAMMA) & MASK64
    x = ((x ^ (x >> 30)) * _SM_MIX1) & MASK64
    x = ((x ^ (x >> 27)) * _SM_MIX2) & MASK64
    return x ^ (x >> 31)


def hash64(data: bytes, seed: int = 0) -> int:
    """Stable 64-bit hash of ``data`` for a given ``seed``."""
    return splitmix64(fnv1a64(data, seed))


def hash_int(value: int, seed: int = 0) -> int:
    """Stable 64-bit hash of a non-negative integer."""
    return splitmix64((value ^ (seed * _SM_GAMMA)) & MASK64)


def double_hashes(data: bytes, count: int, seed: int = 0) -> Iterator[int]:
    """Yield ``count`` derived 64-bit hashes via Kirsch-Mitzenmacher
    double hashing: ``g_i = h1 + i*h2 + i^2`` (the quadratic term avoids
    the classic degradation when ``h2`` is small modulo the table size).
    """
    h1 = hash64(data, seed)
    h2 = hash64(data, seed + 0x51ED)
    # Force h2 odd so it is invertible modulo any power-of-two table size.
    h2 |= 1
    for i in range(count):
        yield (h1 + i * h2 + i * i) & MASK64


def fingerprint(data: bytes, bits: int, seed: int = 0) -> int:
    """Extract a non-zero ``bits``-wide fingerprint of ``data``.

    Zero is reserved as the empty-slot marker in cuckoo-style tables, so a
    fingerprint that truncates to zero is remapped to 1 (a standard trick
    that biases epsilon negligibly).
    """
    if not 1 <= bits <= 32:
        raise ValueError(f"fingerprint width must be in [1, 32], got {bits}")
    fp = hash64(data, seed ^ 0xF1A9) & ((1 << bits) - 1)
    return fp if fp else 1
