"""Versioned delta distribution of AMQ filters (the CRLite pattern).

The churn experiments show suppression decaying with advertised-payload
staleness; the fix at scale is not re-shipping the full filter on every
refresh but versioned incremental updates, the way CRLite ships revocation
filters.  This module layers a monotonic update protocol on top of the AMQ
wire format (:mod:`repro.amq.serialization`):

* A :class:`DeltaPublisher` tracks the canonical *ordered* item list of
  every published version and emits ``repro.delta/v1`` messages: full
  snapshots (a framed AMQ wire image) and patches (add/remove sets
  against a base version).
* A :class:`DeltaApplier` replays those messages client-side.  Counting
  families (see :data:`NATIVE_DELTA_FAMILIES`) apply removals natively
  via ``delete_batch_strict`` and additions via ``insert_batch``; every
  other family gets an **epoch-merged rebuild**: one reconstruction from
  the patched item list per applied update, however many versions the
  update spans, with the target version id folded into the hash seed
  (:func:`delta_seed`).

**The equivalence guarantee.**  For every filter family, applying the
patch chain v0 → vN yields a filter whose wire image is byte-identical
to a fresh build at vN (:func:`build_filter_at`).  For rebuild families
this holds by construction — publisher and applier call the same pure
build function.  For native families it is a real structural property:
the counting-Bloom counter array and the quotient filter's canonical
cluster layout are history-independent, so in-place delete/insert lands
on the same bytes as a fresh build of the surviving set.  Cuckoo and
vacuum tables are *not* history-independent (bucket choice and kick
chains remember insertion order), which is exactly why they take the
rebuild path here despite supporting deletion.

``repro.delta/v1`` message layout (big endian)::

    offset  size  field
    0       2     magic 0xD5 0x01
    2       1     message kind (1 = full snapshot, 2 = patch)
    3       1     filter type id (serialization.FILTER_REGISTRY)
    4       8     to_version (uint64)
    12      4     integrity check: SHA-256 of the message with this
                  field zeroed, first 4 bytes
    16      n     body

A *full* body is an AMQ wire image (``serialize_filter`` output).  A
*patch* body is::

    offset  size  field
    0       8     from_version (uint64, < to_version)
    8       4     capacity at to_version (uint32, >= 1)
    12      2     fpp exponent (uint16, >= 1; same quantizer as AMQ v1)
    14      1     load factor in 1/255 units (>= 1)
    15      4     base hash seed (uint32)
    19      1     item length in bytes (uint8, >= 1)
    20      2     add count (uint16)
    22      2     remove count (uint16)
    24      ...   added items (add_count * item_len bytes, no duplicates)
    ...     ...   removed indices (remove_count * uint16, strictly
                  increasing positions into the from_version item list)

Removals ship as **indices** into the base version's canonical item list
rather than as items: the applier tracks that list anyway (rebuild
families need it), and two bytes per removal instead of a 32-byte
fingerprint is what keeps a patch decisively under the full image on the
wire.  A patch may span several versions (``to_version - from_version >
1``): the publisher merges intermediate patches server-side, so a client
refreshing every k-th epoch downloads one message and performs one
rebuild — the epoch-merge rule.

The integrity field makes the wire layer *hardened* in the fuzzing
sense: any truncation or bit flip anywhere in a delta message raises
:class:`~repro.errors.FilterSerializationError`; a corrupt update can
never decode into a mis-built patch.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.amq.base import AMQFilter, FilterParams
from repro.amq.hashing import MASK64, splitmix64
from repro.amq.serialization import (
    FILTER_REGISTRY,
    canonical_params,
    dequantize_fpp,
    dequantize_load_factor,
    deserialize_filter,
    filter_class_for_name,
    filter_type_id,
    quantize_fpp,
    quantize_load_factor,
    serialize_filter,
)
from repro.errors import (
    ConfigurationError,
    FilterDeleteError,
    FilterFullError,
    FilterSerializationError,
)

_DELTA_MAGIC = b"\xd5\x01"
_KIND_FULL = 1
_KIND_PATCH = 2
#: magic(2) kind(1) type_id(1) to_version(8) check(4)
_DELTA_HEADER = struct.Struct(">2sBBQ4s")
#: from_version(8) capacity(4) fpp_enc(2) lf_enc(1) seed(4) item_len(1)
#: add_count(2) remove_count(2)
_PATCH_HEADER = struct.Struct(">QIHBIBHH")

_MAX_VERSION = (1 << 64) - 1

#: Families whose deletion path is history-independent: the stored bytes
#: are a pure function of the item (multi)set, so a delta's removals can
#: apply in place via ``delete_batch_strict`` and still land on the same
#: wire image as a fresh build.  Cuckoo/vacuum support deletion but their
#: tables remember bucket choices and kick chains, so they rebuild.
NATIVE_DELTA_FAMILIES = frozenset({"counting-bloom", "quotient"})

#: A pluggable build function ``(filter_kind, params, items) -> filter``;
#: the cohort engines pass a memoized one (FilterPlan.build) so repeated
#: versions rehydrate cached images instead of rebuilding.
FilterBuilder = Callable[[str, FilterParams, List[bytes]], AMQFilter]


def delta_seed(filter_kind: str, base_seed: int, version: int) -> int:
    """Hash seed of ``filter_kind`` at ``version``.

    Rebuild families fold the version id into the 32-bit wire seed (two
    epochs of one deployment never share hash geometry, the CRLite salt
    rotation); version 0 is the plain base build.  Native families keep
    the base seed at every version — their whole point is that the table
    mutates in place, which requires stable hashing.
    """
    base = base_seed & 0xFFFFFFFF
    if version == 0 or filter_kind in NATIVE_DELTA_FAMILIES:
        return base
    return splitmix64(splitmix64(version & MASK64) ^ base) & 0xFFFFFFFF


def params_at(
    filter_kind: str,
    capacity: int,
    fpp: float,
    load_factor: float,
    base_seed: int,
    version: int,
) -> FilterParams:
    """Canonical (wire-quantized) params of a version's filter."""
    return canonical_params(
        FilterParams(
            capacity=capacity,
            fpp=fpp,
            load_factor=load_factor,
            seed=delta_seed(filter_kind, base_seed, version),
        )
    )


def build_filter_at(
    filter_kind: str,
    capacity: int,
    fpp: float,
    load_factor: float,
    base_seed: int,
    version: int,
    items: Sequence[bytes],
    builder: Optional[FilterBuilder] = None,
) -> AMQFilter:
    """The canonical filter of ``version``: one pure function shared by
    publisher snapshots, applier rebuilds and the equivalence suite's
    "fresh build at vN" — which is what makes byte-identity achievable
    rather than aspirational."""
    params = params_at(filter_kind, capacity, fpp, load_factor, base_seed, version)
    items = [bytes(item) for item in items]
    if builder is not None:
        return builder(filter_kind, params, items)
    cls = filter_class_for_name(filter_kind)
    return cls.build_from_fingerprints(params, items)


# -- messages ----------------------------------------------------------------


@dataclass(frozen=True)
class FilterDelta:
    """A patch: transform the ``from_version`` item list into the
    ``to_version`` list by dropping ``removed_indices`` (positions into
    the base list) and appending ``added``."""

    filter_kind: str
    from_version: int
    to_version: int
    capacity: int
    fpp: float
    load_factor: float
    seed: int
    added: Tuple[bytes, ...]
    removed_indices: Tuple[int, ...]

    @property
    def spans_epochs(self) -> bool:
        """True when this patch is an epoch merge of several versions."""
        return self.to_version - self.from_version > 1


@dataclass(frozen=True)
class FilterSnapshot:
    """A full filter image at ``version`` (the resync message)."""

    filter_kind: str
    version: int
    image: bytes


DeltaMessage = Union[FilterDelta, FilterSnapshot]


def _checked_message(kind: int, type_id: int, to_version: int, body: bytes) -> bytes:
    head = _DELTA_HEADER.pack(_DELTA_MAGIC, kind, type_id, to_version, b"\0\0\0\0")
    check = hashlib.sha256(head + body).digest()[:4]
    return _DELTA_HEADER.pack(_DELTA_MAGIC, kind, type_id, to_version, check) + body


def _validate_patch_fields(patch: FilterDelta) -> None:
    if patch.to_version > _MAX_VERSION or patch.from_version < 0:
        raise FilterSerializationError(
            f"delta version {patch.to_version} out of the uint64 range"
        )
    if patch.from_version >= patch.to_version:
        raise FilterSerializationError(
            f"delta versions must be monotonic: from_version "
            f"{patch.from_version} >= to_version {patch.to_version}"
        )
    if patch.capacity < 1 or patch.capacity > 0xFFFFFFFF:
        raise FilterSerializationError(
            f"delta capacity {patch.capacity} out of range [1, 2^32)"
        )
    if len(patch.added) > 0xFFFF or len(patch.removed_indices) > 0xFFFF:
        raise FilterSerializationError(
            f"delta patch sets of {len(patch.added)} adds / "
            f"{len(patch.removed_indices)} removes exceed the uint16 counts"
        )
    if patch.added:
        item_len = len(patch.added[0])
        if item_len < 1 or item_len > 0xFF:
            raise FilterSerializationError(
                f"delta item length {item_len} out of range [1, 255]"
            )
        if any(len(item) != item_len for item in patch.added):
            raise FilterSerializationError(
                "delta added items must share one length"
            )
        if len(set(patch.added)) != len(patch.added):
            raise FilterSerializationError("delta added items contain duplicates")
    for prev, cur in zip(patch.removed_indices, patch.removed_indices[1:]):
        if cur <= prev:
            raise FilterSerializationError(
                "delta removed indices must be strictly increasing"
            )
    if patch.removed_indices:
        first, last = patch.removed_indices[0], patch.removed_indices[-1]
        if first < 0 or last > 0xFFFF:
            raise FilterSerializationError(
                f"delta removed index {last if last > 0xFFFF else first} "
                "out of the uint16 range"
            )


def serialize_delta(message: DeltaMessage) -> bytes:
    """Serialize a snapshot or patch into a ``repro.delta/v1`` message."""
    if isinstance(message, FilterSnapshot):
        if not 0 <= message.version <= _MAX_VERSION:
            raise FilterSerializationError(
                f"delta version {message.version} out of the uint64 range"
            )
        image_type = _image_type_id(message.image)
        cls = filter_class_for_name(message.filter_kind)
        if image_type != filter_type_id(cls):
            raise FilterSerializationError(
                f"snapshot image carries filter type {image_type}, "
                f"not {message.filter_kind!r}"
            )
        return _checked_message(
            _KIND_FULL, image_type, message.version, message.image
        )
    _validate_patch_fields(message)
    type_id = filter_type_id(filter_class_for_name(message.filter_kind))
    item_len = len(message.added[0]) if message.added else 1
    body = _PATCH_HEADER.pack(
        message.from_version,
        message.capacity,
        quantize_fpp(message.fpp),
        quantize_load_factor(message.load_factor),
        message.seed & 0xFFFFFFFF,
        item_len,
        len(message.added),
        len(message.removed_indices),
    )
    body += b"".join(message.added)
    body += b"".join(
        index.to_bytes(2, "big") for index in message.removed_indices
    )
    return _checked_message(_KIND_PATCH, type_id, message.to_version, body)


def _image_type_id(image: bytes) -> int:
    if len(image) < 3:
        raise FilterSerializationError(
            f"AMQ image of {len(image)} bytes cannot carry a type id"
        )
    return image[2]


def deserialize_delta(data: bytes) -> DeltaMessage:
    """Parse a ``repro.delta/v1`` message; any corruption — truncation,
    bit flip, inconsistent counts — raises FilterSerializationError."""
    if len(data) < _DELTA_HEADER.size:
        raise FilterSerializationError(
            f"delta message is {len(data)} bytes; header needs "
            f"{_DELTA_HEADER.size}"
        )
    magic, kind, type_id, to_version, check = _DELTA_HEADER.unpack(
        data[: _DELTA_HEADER.size]
    )
    if magic != _DELTA_MAGIC:
        raise FilterSerializationError(f"bad delta magic {magic!r}")
    body = data[_DELTA_HEADER.size :]
    expected = hashlib.sha256(
        _DELTA_HEADER.pack(_DELTA_MAGIC, kind, type_id, to_version, b"\0\0\0\0")
        + body
    ).digest()[:4]
    if check != expected:
        raise FilterSerializationError(
            "delta integrity check failed; the message is corrupt"
        )
    try:
        cls = FILTER_REGISTRY[type_id]
    except KeyError:
        raise FilterSerializationError(
            f"unknown filter type id {type_id} in delta header"
        ) from None
    if kind == _KIND_FULL:
        # The embedded image must itself decode; parse eagerly so a
        # corrupt snapshot fails here, not at first use.
        filt = deserialize_filter(body)
        if filter_type_id(filt) != type_id:
            raise FilterSerializationError(
                f"snapshot header claims type {type_id} but the image "
                f"decodes as {filt.name!r}"
            )
        return FilterSnapshot(
            filter_kind=cls.name, version=to_version, image=body
        )
    if kind != _KIND_PATCH:
        raise FilterSerializationError(f"unknown delta message kind {kind}")
    if len(body) < _PATCH_HEADER.size:
        raise FilterSerializationError(
            f"delta patch body is {len(body)} bytes; header needs "
            f"{_PATCH_HEADER.size}"
        )
    (
        from_version,
        capacity,
        fpp_enc,
        lf_enc,
        seed,
        item_len,
        add_count,
        remove_count,
    ) = _PATCH_HEADER.unpack(body[: _PATCH_HEADER.size])
    if fpp_enc == 0:
        raise FilterSerializationError(
            "delta patch carries a zero fpp exponent (fpp = 1.0)"
        )
    if lf_enc == 0:
        raise FilterSerializationError("delta patch carries a zero load factor")
    if capacity < 1:
        raise FilterSerializationError("delta patch carries zero capacity")
    if item_len < 1:
        raise FilterSerializationError("delta patch carries zero item length")
    expected_len = (
        _PATCH_HEADER.size + add_count * item_len + remove_count * 2
    )
    if len(body) != expected_len:
        raise FilterSerializationError(
            f"delta patch body is {len(body)} bytes, counts imply "
            f"{expected_len}"
        )
    offset = _PATCH_HEADER.size
    added = tuple(
        bytes(body[offset + i * item_len : offset + (i + 1) * item_len])
        for i in range(add_count)
    )
    offset += add_count * item_len
    removed = tuple(
        int.from_bytes(body[offset + i * 2 : offset + (i + 1) * 2], "big")
        for i in range(remove_count)
    )
    patch = FilterDelta(
        filter_kind=cls.name,
        from_version=from_version,
        to_version=to_version,
        capacity=capacity,
        fpp=dequantize_fpp(fpp_enc),
        load_factor=dequantize_load_factor(lf_enc),
        seed=seed,
        added=added,
        removed_indices=removed,
    )
    _validate_patch_fields(patch)
    return patch


def delta_overhead_bytes() -> int:
    """Framing bytes a snapshot message adds on top of the AMQ image."""
    return _DELTA_HEADER.size


# -- canonical list algebra ---------------------------------------------------


def _canonical_items(items: Sequence[bytes]) -> Tuple[bytes, ...]:
    out = tuple(dict.fromkeys(bytes(item) for item in items))
    if out and any(len(i) != len(out[0]) for i in out):
        raise ConfigurationError(
            "delta item lists must hold uniform-length items"
        )
    return out


def diff_items(
    old: Sequence[bytes], new: Sequence[bytes]
) -> Tuple[Tuple[int, ...], Tuple[bytes, ...]]:
    """(removed indices into ``old``, items to append) transforming the
    ordered list ``old`` into ``new``.

    The survivor prefix of ``new`` must be an order-preserving sublist of
    ``old``; anything past the longest such prefix ships as an add.  An
    item that left and re-entered the list (removed at one version,
    re-learned later — it re-enters at the *end*) therefore ships as a
    remove of its old position plus a re-add, which is the only shape the
    index-based patch encoding can express.
    """
    positions: Dict[bytes, int] = {item: i for i, item in enumerate(old)}
    split = 0
    last = -1
    for item in new:
        pos = positions.get(item, -1)
        if pos <= last:
            break
        last = pos
        split += 1
    survivors = frozenset(new[:split])
    removed = tuple(
        i for i, item in enumerate(old) if item not in survivors
    )
    return removed, tuple(new[split:])


def apply_diff(
    old: Sequence[bytes],
    removed_indices: Sequence[int],
    added: Sequence[bytes],
) -> List[bytes]:
    """Replay a diff: drop the removed positions, append the adds."""
    dropped = set(removed_indices)
    out = [item for i, item in enumerate(old) if i not in dropped]
    out.extend(added)
    return out


# -- publisher ----------------------------------------------------------------


class DeltaPublisher:
    """Server side of the protocol: the canonical item trajectory.

    Every :meth:`publish` freezes one version: the canonicalized ordered
    item list plus the capacity in force (grow-only, re-planned with
    ``headroom`` only when the count overflows the current table — so
    native families keep their geometry, and with it their in-place
    patch path, across quiet versions).  :meth:`update_since` then serves
    any client: one epoch-merged patch from its version to the head, or
    the framed full snapshot when that is the smaller message — whichever
    costs fewer bytes is what goes on the wire, CRLite-style.
    """

    def __init__(
        self,
        filter_kind: str,
        initial_items: Sequence[bytes],
        fpp: float = 1e-3,
        load_factor: float = 0.9,
        seed: int = 0,
        headroom: float = 2.0,
        builder: Optional[FilterBuilder] = None,
    ) -> None:
        if headroom < 1.0:
            raise ConfigurationError(
                f"headroom must be >= 1.0, got {headroom}"
            )
        # Resolve the name early so a typo fails at construction.
        filter_class_for_name(filter_kind)
        self.filter_kind = filter_kind
        self.headroom = headroom
        self._builder = builder
        base = canonical_params(
            FilterParams(
                capacity=1, fpp=fpp, load_factor=load_factor, seed=seed
            )
        )
        self.fpp = base.fpp
        self.load_factor = base.load_factor
        self.seed = base.seed
        items = _canonical_items(initial_items)
        #: Per-version (ordered items, capacity).
        self._history: List[Tuple[Tuple[bytes, ...], int]] = [
            (items, self._planned_capacity(len(items)))
        ]
        self._images: Dict[int, bytes] = {}

    def _planned_capacity(self, count: int) -> int:
        return max(1, round(count * self.headroom))

    @property
    def version(self) -> int:
        return len(self._history) - 1

    @property
    def items(self) -> Tuple[bytes, ...]:
        return self._history[-1][0]

    def items_at(self, version: int) -> Tuple[bytes, ...]:
        return self._history[version][0]

    def capacity_at(self, version: int) -> int:
        return self._history[version][1]

    def publish(self, items: Sequence[bytes]) -> int:
        """Freeze the next version from the current canonical item set;
        returns the new version id."""
        if self.version >= _MAX_VERSION:
            raise ConfigurationError("delta version space exhausted")
        new_items = _canonical_items(items)
        capacity = self._history[-1][1]
        if len(new_items) > capacity:
            capacity = self._planned_capacity(len(new_items))
        self._history.append((new_items, capacity))
        obs.inc("amq.delta.publishes")
        return self.version

    def image_at(self, version: int) -> bytes:
        """Canonical wire image of a version (memoized per publisher)."""
        cached = self._images.get(version)
        if cached is None:
            items, capacity = self._history[version]
            filt = build_filter_at(
                self.filter_kind,
                capacity,
                self.fpp,
                self.load_factor,
                self.seed,
                version,
                list(items),
                builder=self._builder,
            )
            cached = serialize_filter(filt)
            self._images[version] = cached
        return cached

    def snapshot_message(self, version: Optional[int] = None) -> bytes:
        """Framed full snapshot of ``version`` (default: head)."""
        version = self.version if version is None else version
        return serialize_delta(
            FilterSnapshot(
                filter_kind=self.filter_kind,
                version=version,
                image=self.image_at(version),
            )
        )

    def patch_message(
        self, from_version: int, to_version: Optional[int] = None
    ) -> bytes:
        """One epoch-merged patch ``from_version -> to_version``."""
        to_version = self.version if to_version is None else to_version
        if not 0 <= from_version < to_version <= self.version:
            raise ConfigurationError(
                f"cannot patch from version {from_version} to "
                f"{to_version} at head {self.version}"
            )
        old = self._history[from_version][0]
        new, capacity = self._history[to_version]
        removed, added = diff_items(old, new)
        return serialize_delta(
            FilterDelta(
                filter_kind=self.filter_kind,
                from_version=from_version,
                to_version=to_version,
                capacity=capacity,
                fpp=self.fpp,
                load_factor=self.load_factor,
                seed=self.seed,
                added=added,
                removed_indices=removed,
            )
        )

    def update_since(self, from_version: int) -> bytes:
        """The cheapest valid update for a client at ``from_version``:
        the merged patch or the full snapshot, whichever is smaller on
        the wire (byte savings are metered either way)."""
        if from_version >= self.version:
            raise ConfigurationError(
                f"client version {from_version} is not behind head "
                f"{self.version}"
            )
        snapshot = self.snapshot_message()
        patch: Optional[bytes] = None
        old = self._history[from_version][0]
        # A base list too wide for uint16 indices cannot be patched.
        if len(old) <= 0x10000:
            try:
                patch = self.patch_message(from_version)
            except FilterSerializationError:
                patch = None
        if patch is not None and len(patch) < len(snapshot):
            obs.inc("amq.delta.patch_messages")
            obs.inc("amq.delta.bytes_saved", len(snapshot) - len(patch))
            return patch
        obs.inc("amq.delta.full_messages")
        return snapshot


# -- applier ------------------------------------------------------------------


class DeltaApplier:
    """Client side: a versioned filter plus the ordered item list behind
    it, advanced by ``repro.delta/v1`` messages.

    Every update is all-or-nothing: validation happens before any
    mutation, and the native in-place path unwinds byte-identically
    (``delete_batch_strict``) if the table and the patch disagree — a
    malformed patch can never leave a half-applied filter behind.
    """

    def __init__(
        self,
        filter_kind: str,
        initial_items: Sequence[bytes],
        capacity: Optional[int] = None,
        fpp: float = 1e-3,
        load_factor: float = 0.9,
        seed: int = 0,
        version: int = 0,
        builder: Optional[FilterBuilder] = None,
    ) -> None:
        filter_class_for_name(filter_kind)
        self.filter_kind = filter_kind
        self._builder = builder
        base = canonical_params(
            FilterParams(capacity=1, fpp=fpp, load_factor=load_factor, seed=seed)
        )
        self.fpp = base.fpp
        self.load_factor = base.load_factor
        self.seed = base.seed
        self._items = list(_canonical_items(initial_items))
        self._capacity = (
            capacity if capacity is not None else max(1, len(self._items))
        )
        self._version = version
        self._filter = self._build(self._version)
        self._image: Optional[bytes] = None

    def _build(self, version: int) -> AMQFilter:
        return build_filter_at(
            self.filter_kind,
            self._capacity,
            self.fpp,
            self.load_factor,
            self.seed,
            version,
            self._items,
            builder=self._builder,
        )

    @property
    def version(self) -> int:
        return self._version

    @property
    def items(self) -> Tuple[bytes, ...]:
        return tuple(self._items)

    @property
    def filter(self) -> AMQFilter:
        return self._filter

    def image(self) -> bytes:
        """Current advertised wire image (memoized between updates)."""
        if self._image is None:
            self._image = serialize_filter(self._filter)
        return self._image

    # -- validation ----------------------------------------------------------

    def _check_patch(self, patch: FilterDelta) -> None:
        if patch.filter_kind != self.filter_kind:
            raise FilterSerializationError(
                f"patch targets {patch.filter_kind!r}, applier holds "
                f"{self.filter_kind!r}"
            )
        if patch.from_version != self._version:
            raise FilterSerializationError(
                f"patch base version {patch.from_version} does not match "
                f"applier version {self._version}"
            )
        if (
            quantize_fpp(patch.fpp) != quantize_fpp(self.fpp)
            or quantize_load_factor(patch.load_factor)
            != quantize_load_factor(self.load_factor)
            or patch.seed != self.seed
        ):
            raise FilterSerializationError(
                "patch base parameters do not match the applier's"
            )
        if patch.removed_indices and patch.removed_indices[-1] >= len(
            self._items
        ):
            raise FilterSerializationError(
                f"patch removes index {patch.removed_indices[-1]} of a "
                f"{len(self._items)}-item list"
            )
        if patch.added:
            if self._items and len(patch.added[0]) != len(self._items[0]):
                raise FilterSerializationError(
                    f"patch adds {len(patch.added[0])}-byte items to a "
                    f"{len(self._items[0])}-byte-item list"
                )
            dropped = set(patch.removed_indices)
            survivors = {
                item
                for i, item in enumerate(self._items)
                if i not in dropped
            }
            for item in patch.added:
                if item in survivors:
                    raise FilterSerializationError(
                        "patch adds an item the filter already holds"
                    )

    # -- application ----------------------------------------------------------

    def apply(
        self,
        update: Union[bytes, DeltaMessage],
        snapshot_items: Optional[Sequence[bytes]] = None,
    ) -> None:
        """Apply one update message (wire bytes or a decoded message).

        Snapshots need ``snapshot_items``: the image cannot transport the
        ordered item list, and without it later patches could not be
        applied (clients resync from local knowledge — here, the same
        canonical cache the filter describes).
        """
        if isinstance(update, (bytes, bytearray)):
            update = deserialize_delta(bytes(update))
        if isinstance(update, FilterSnapshot):
            self._apply_snapshot(update, snapshot_items)
        else:
            self._apply_patch(update)
        self._image = None

    def _apply_snapshot(
        self,
        snapshot: FilterSnapshot,
        snapshot_items: Optional[Sequence[bytes]],
    ) -> None:
        if snapshot.filter_kind != self.filter_kind:
            raise FilterSerializationError(
                f"snapshot targets {snapshot.filter_kind!r}, applier "
                f"holds {self.filter_kind!r}"
            )
        if snapshot.version <= self._version:
            raise FilterSerializationError(
                f"snapshot version {snapshot.version} does not advance "
                f"applier version {self._version}"
            )
        if snapshot_items is None:
            raise FilterSerializationError(
                "a snapshot resync needs the ordered item list "
                "(snapshot_items)"
            )
        filt = deserialize_filter(snapshot.image)
        params = filt.params
        expected_seed = delta_seed(
            self.filter_kind, self.seed, snapshot.version
        )
        if (
            params.seed != expected_seed
            or quantize_fpp(params.fpp) != quantize_fpp(self.fpp)
            or quantize_load_factor(params.load_factor)
            != quantize_load_factor(self.load_factor)
        ):
            raise FilterSerializationError(
                "snapshot image parameters do not match the applier's "
                "derivation for its version"
            )
        items = list(_canonical_items(snapshot_items))
        filt.attach_source_items(items)
        self._items = items
        self._capacity = params.capacity
        self._version = snapshot.version
        self._filter = filt
        obs.inc("amq.delta.resyncs")

    def _apply_patch(self, patch: FilterDelta) -> None:
        self._check_patch(patch)
        removed_items = [self._items[i] for i in patch.removed_indices]
        new_items = apply_diff(self._items, patch.removed_indices, patch.added)
        native = (
            self.filter_kind in NATIVE_DELTA_FAMILIES
            and patch.capacity == self._capacity
        )
        if native:
            self._apply_native(patch, removed_items)
        else:
            self._filter = build_filter_at(
                self.filter_kind,
                patch.capacity,
                self.fpp,
                self.load_factor,
                self.seed,
                patch.to_version,
                new_items,
                builder=self._builder,
            )
            obs.inc("amq.delta.rebuilds")
        self._items = new_items
        self._capacity = patch.capacity
        self._version = patch.to_version
        obs.inc("amq.delta.patches_applied")
        obs.inc("amq.delta.items_added", len(patch.added))
        obs.inc("amq.delta.items_removed", len(patch.removed_indices))
        if patch.spans_epochs:
            obs.inc("amq.delta.epoch_merges")

    def _apply_native(
        self, patch: FilterDelta, removed_items: List[bytes]
    ) -> None:
        filt = self._filter
        try:
            if removed_items:
                filt.delete_batch_strict(removed_items)
        except FilterDeleteError as exc:
            # delete_batch_strict already unwound byte-identically; the
            # patch names an item the table does not hold.
            raise FilterSerializationError(
                f"patch removes an item the filter does not hold: {exc}"
            ) from exc
        if patch.added:
            try:
                filt.insert_batch(list(patch.added))
            except FilterFullError as exc:
                # History independence makes the restore exact: rebuild
                # from the pre-patch item list at the pre-patch version.
                self._filter = self._build(self._version)
                raise FilterSerializationError(
                    f"patch overflows the filter's capacity "
                    f"{self._capacity}: {exc}"
                ) from exc
        obs.inc("amq.delta.native_applies")


def snapshot_overhead_bytes() -> int:
    """Total framing of a full-refresh distribution message: the delta
    header on top of the AMQ image (whose own header
    ``serialized_overhead_bytes`` already counts against the payload) —
    what the ``--distribution full`` churn arm pays per refresh."""
    return delta_overhead_bytes()


__all__ = [
    "NATIVE_DELTA_FAMILIES",
    "FilterDelta",
    "FilterSnapshot",
    "DeltaApplier",
    "DeltaPublisher",
    "apply_diff",
    "build_filter_at",
    "delta_overhead_bytes",
    "delta_seed",
    "deserialize_delta",
    "diff_items",
    "params_at",
    "serialize_delta",
    "snapshot_overhead_bytes",
]
