"""Vectorized LSB-first bit-stream packing for AMQ wire images.

Every AMQ payload is a dense little-endian-bit stream: value ``i`` of
width ``w`` occupies bits ``[i*w, (i+1)*w)`` of the output, least
significant bit first within each byte. The scalar accumulator loop that
historically produced these streams is exact but costs a Python-level
iteration per slot; this module produces **byte-identical** streams with
a constant number of numpy passes.

The packing kernel scatters each value into the (up to five) output
bytes it straddles with fancy-indexed ``|=``. Fancy-index assignment is
only safe when the indices within one assignment are unique, so values
are processed in *stride phases*: with a stride of ``s`` values, two
packed values of the same phase start at least ``span`` bytes apart and
never touch the same byte. (``np.bitwise_or.at`` would allow duplicate
indices but is an order of magnitude slower.) Unpacking is a plain
gather and needs no phasing.

Field widths are limited to 32 bits: a value shifted by its intra-byte
offset then occupies at most 39 bits, comfortably inside uint64, and
spans at most 5 output bytes.

Everything degrades to the original scalar accumulator loop when numpy
is unavailable or the input is a plain Python sequence — callers never
need to branch on ``HAVE_NUMPY`` themselves.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.amq.hashing import np

#: Widest field the vectorized kernels handle. Wider fields would
#: overflow the uint64 shift-and-scatter kernel, so they take the scalar
#: accumulator path (arbitrary widths, Python big ints).
MAX_FIELD_BITS = 32


def _check_width(width: int) -> None:
    if width < 1:
        raise ValueError(f"field width must be positive, got {width}")


def _span_bytes(width: int) -> int:
    # A value at intra-byte offset up to 7 covers ceil((width + 7) / 8)
    # bytes.
    return (width + 7 + 7) // 8


# ---------------------------------------------------------------------------
# Scalar fallbacks (the historical accumulator loops — also the spec)
# ---------------------------------------------------------------------------


def pack_uniform_py(values: Sequence[int], width: int) -> bytes:
    _check_width(width)
    acc = 0
    acc_bits = 0
    out = bytearray()
    for value in values:
        acc |= int(value) << acc_bits
        acc_bits += width
        while acc_bits >= 8:
            out.append(acc & 0xFF)
            acc >>= 8
            acc_bits -= 8
    if acc_bits:
        out.append(acc & 0xFF)
    return bytes(out)


def unpack_uniform_py(data: bytes, count: int, width: int) -> List[int]:
    _check_width(width)
    mask = (1 << width) - 1
    out: List[int] = []
    acc = 0
    acc_bits = 0
    pos = 0
    while len(out) < count:
        while acc_bits < width:
            if pos >= len(data):
                raise ValueError(
                    f"bit stream truncated: decoded {len(out)} of {count} values"
                )
            acc |= data[pos] << acc_bits
            acc_bits += 8
            pos += 1
        out.append(acc & mask)
        acc >>= width
        acc_bits -= width
    return out


def pack_records_py(fields: Sequence[Tuple[Sequence[int], int]]) -> bytes:
    acc = 0
    acc_bits = 0
    out = bytearray()
    count = len(fields[0][0])
    for i in range(count):
        for values, width in fields:
            acc |= int(values[i]) << acc_bits
            acc_bits += width
            while acc_bits >= 8:
                out.append(acc & 0xFF)
                acc >>= 8
                acc_bits -= 8
    if acc_bits:
        out.append(acc & 0xFF)
    return bytes(out)


def unpack_records_py(
    data: bytes, count: int, widths: Sequence[int]
) -> List[List[int]]:
    out: List[List[int]] = [[] for _ in widths]
    acc = 0
    acc_bits = 0
    pos = 0
    for _ in range(count):
        for field, width in enumerate(widths):
            while acc_bits < width:
                if pos >= len(data):
                    raise ValueError("bit stream truncated")
                acc |= data[pos] << acc_bits
                acc_bits += 8
                pos += 1
            out[field].append(acc & ((1 << width) - 1))
            acc >>= width
            acc_bits -= width
    return out


# ---------------------------------------------------------------------------
# Vectorized kernels
# ---------------------------------------------------------------------------


def _scatter_or(out, values, bit_positions, width: int, stride_bits: int) -> None:
    """OR ``values`` (uint64) into byte buffer ``out`` at ``bit_positions``
    (LSB-first). Positions must be strictly increasing with a constant gap
    of ``stride_bits``; phasing makes same-pass byte indices unique."""
    u64 = np.uint64
    span = _span_bytes(width)
    phases = -(-span * 8 // stride_bits)
    byte0 = (bit_positions >> 3).astype(np.intp)
    shifted = values << (bit_positions & u64(7))
    for phase in range(phases):
        sel = slice(phase, None, phases)
        v = shifted[sel]
        b0 = byte0[sel]
        for b in range(span):
            out[b0 + b] |= ((v >> u64(8 * b)) & u64(0xFF)).astype(np.uint8)


def _gather(padded, bit_positions, width: int):
    """Inverse of :func:`_scatter_or`; ``padded`` must have >= span bytes
    of zero padding past the stream end."""
    u64 = np.uint64
    span = _span_bytes(width)
    byte0 = (bit_positions >> 3).astype(np.intp)
    acc = padded[byte0].astype(u64)
    for b in range(1, span):
        acc |= padded[byte0 + b].astype(u64) << u64(8 * b)
    return (acc >> (bit_positions & u64(7))) & u64((1 << width) - 1)


def pack_uniform(values, width: int) -> bytes:
    """Pack ``values`` at ``width`` bits each, LSB-first, final byte
    zero-padded — byte-identical to :func:`pack_uniform_py`."""
    _check_width(width)
    if np is None or not isinstance(values, np.ndarray) or width > MAX_FIELD_BITS:
        return pack_uniform_py(values, width)
    n = len(values)
    if n == 0:
        return b""
    vals = np.ascontiguousarray(values, dtype=np.uint64)
    nbytes = (n * width + 7) // 8
    out = np.zeros(nbytes + _span_bytes(width), dtype=np.uint8)
    positions = np.arange(n, dtype=np.uint64) * np.uint64(width)
    _scatter_or(out, vals, positions, width, width)
    return out[:nbytes].tobytes()


def unpack_uniform(data: bytes, count: int, width: int):
    """Decode ``count`` values of ``width`` bits from ``data``. Returns a
    uint64 array (numpy) or list of ints (fallback)."""
    _check_width(width)
    if np is None or width > MAX_FIELD_BITS:
        return unpack_uniform_py(data, count, width)
    if (count * width + 7) // 8 > len(data):
        raise ValueError(
            f"bit stream truncated: {len(data)} bytes cannot hold "
            f"{count} x {width}-bit values"
        )
    span = _span_bytes(width)
    padded = np.zeros(len(data) + span, dtype=np.uint8)
    padded[: len(data)] = np.frombuffer(data, dtype=np.uint8)
    positions = np.arange(count, dtype=np.uint64) * np.uint64(width)
    return _gather(padded, positions, width)


def pack_records(fields: Sequence[Tuple["object", int]]) -> bytes:
    """Pack parallel field columns as interleaved fixed-width records.

    ``fields`` is ``[(values, width), ...]``; record ``i`` is the
    concatenation of ``values[i]`` across fields, in order, LSB-first —
    byte-identical to the scalar per-record accumulator loop.
    """
    for _, width in fields:
        _check_width(width)
    if (
        np is None
        or not all(isinstance(v, np.ndarray) for v, _ in fields)
        or any(width > MAX_FIELD_BITS for _, width in fields)
    ):
        return pack_records_py(fields)
    record_bits = 0
    offsets = []
    for _, width in fields:
        offsets.append(record_bits)
        record_bits += width
    n = len(fields[0][0])
    if n == 0:
        return b""
    nbytes = (n * record_bits + 7) // 8
    out = np.zeros(nbytes + _span_bytes(MAX_FIELD_BITS), dtype=np.uint8)
    base = np.arange(n, dtype=np.uint64) * np.uint64(record_bits)
    for (values, width), offset in zip(fields, offsets):
        vals = np.ascontiguousarray(values, dtype=np.uint64)
        _scatter_or(out, vals, base + np.uint64(offset), width, record_bits)
    return out[:nbytes].tobytes()


def unpack_records(data: bytes, count: int, widths: Sequence[int]):
    """Decode ``count`` records of the given field ``widths``; returns one
    array (or list) per field."""
    for width in widths:
        _check_width(width)
    if np is None or any(width > MAX_FIELD_BITS for width in widths):
        return unpack_records_py(data, count, widths)
    record_bits = sum(widths)
    if (count * record_bits + 7) // 8 > len(data):
        raise ValueError(
            f"bit stream truncated: {len(data)} bytes cannot hold "
            f"{count} records of {record_bits} bits"
        )
    padded = np.zeros(len(data) + _span_bytes(MAX_FIELD_BITS), dtype=np.uint8)
    padded[: len(data)] = np.frombuffer(data, dtype=np.uint8)
    base = np.arange(count, dtype=np.uint64) * np.uint64(record_bits)
    out = []
    offset = 0
    for width in widths:
        out.append(_gather(padded, base + np.uint64(offset), width))
        offset += width
    return out


def pack_flags(flags) -> bytes:
    """Pack booleans 8-per-byte, LSB-first (bit ``i`` of the stream is
    flag ``i``)."""
    if np is None:
        out = bytearray((len(flags) + 7) // 8)
        for i, flag in enumerate(flags):
            if flag:
                out[i >> 3] |= 1 << (i & 7)
        return bytes(out)
    arr = np.asarray(flags, dtype=bool)
    return np.packbits(arr, bitorder="little").tobytes()


def unpack_flags(data: bytes, count: int):
    """Inverse of :func:`pack_flags`; returns a bool array (or list)."""
    if np is None:
        return [bool(data[i >> 3] & (1 << (i & 7))) for i in range(count)]
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8), bitorder="little")
    return bits[:count].astype(bool)
