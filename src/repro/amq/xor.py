"""XOR filter (Graf & Lemire, 2020) — the static baseline.

Not one of the paper's candidates (it cannot be updated in place), but the
natural lower bound for the §6 "carefully curated and universal ICA
filters" deployment mode, where the advertised set changes rarely and
updates can be batched into rebuilds: an XOR filter stores ~1.23
fingerprints' worth of bits per item with an exact ``2^-f`` false-positive
rate — beating every dynamic structure on the wire.

Lookups XOR three table slots (one per table third) and compare with the
item's fingerprint. Construction peels the 3-uniform hypergraph: repeat
with a fresh construction seed on the (rare) non-peelable instance.

Mutation model: inserts buffer into an item list and mark the table
dirty; any query or serialization rebuilds first. ``supports_deletion``
is False — a deletion is a rebuild, exactly the cost the paper cites for
static structures, and exactly what :class:`~repro.core.manager.
FilterManager` meters when this filter is plugged into the pipeline.

The table is a preallocated ``uint64`` array; construction runs on the
array-native engine in :mod:`repro.amq.peel` — fused hashing and
degree/accumulator scatter are vectorized, while the peel decision loop
replays the original scalar queue's exact LIFO pop order over packed
records (the order determines the slot->item matching and with it the
wire image, so it is pinned exactly as the original implementation wrote
it; ``peel.peel_spec`` keeps that original as the executable spec).
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro import obs
from repro.amq import bitpack, peel
from repro.amq.base import AMQFilter, FilterParams
from repro.amq.hashing import (
    VECTOR_MIN_BATCH,
    hash64,
    np,
    splitmix64,
    xor_hashes_np,
)
from repro.errors import FilterFullError, FilterSerializationError

_MAX_CONSTRUCTION_ATTEMPTS = 64


def xor_fingerprint_bits(fpp: float) -> int:
    """FPP of an XOR filter is exactly 2^-f."""
    return max(2, min(32, math.ceil(-math.log2(fpp))))


def xor_slot_count(capacity: int) -> int:
    """Graf-Lemire sizing: floor(1.23 * n) + 32, rounded to a multiple of
    3 (three equal table segments)."""
    slots = int(1.23 * max(1, capacity)) + 32
    return slots + (-slots) % 3


class XorFilter(AMQFilter):
    """Static 3-wise XOR filter with buffered construction."""

    name = "xor"
    supports_deletion = False

    def __init__(self, params: FilterParams) -> None:
        super().__init__(params)
        self._fp_bits = xor_fingerprint_bits(params.fpp)
        self._slots = xor_slot_count(params.capacity)
        if np is not None:
            self._table = np.zeros(self._slots, dtype=np.uint64)
        else:
            self._table = [0] * self._slots
        self._items: List[bytes] = []
        self._dirty = False
        self._construction_seed = 0

    # -- geometry ------------------------------------------------------------

    @property
    def fingerprint_bits(self) -> int:
        return self._fp_bits

    def slot_count(self) -> int:
        return self._slots

    def size_in_bytes(self) -> int:
        return (self._slots * self._fp_bits + 7) // 8

    def effective_fpp(self) -> float:
        """Exactly 2^-f, independent of occupancy (XOR of 3 slots)."""
        return 2.0 ** -self._fp_bits

    # -- hashing --------------------------------------------------------------

    def _hashes(self, item: bytes, construction_seed: int):
        """(h0, h1, h2, fingerprint) for the given construction seed."""
        base = hash64(item, self._params.seed ^ (construction_seed * 0x9E37))
        third = self._slots // 3
        h0 = base % third
        h1 = third + (splitmix64(base ^ 0xA5A5) % third)
        h2 = 2 * third + (splitmix64(base ^ 0x5A5A) % third)
        fp = splitmix64(base ^ 0xF0F0) & ((1 << self._fp_bits) - 1)
        return h0, h1, h2, fp

    # -- construction ------------------------------------------------------------

    def _rebuild(self) -> None:
        # Duplicate items would make the hypergraph unpeelable (identical
        # triples never reach degree 1); membership only needs the set.
        self._build_items = list(dict.fromkeys(self._items))
        for attempt in range(_MAX_CONSTRUCTION_ATTEMPTS):
            if self._try_build(attempt):
                self._construction_seed = attempt
                self._dirty = False
                self._record_construction_attempts(attempt + 1)
                return
        self._record_construction_attempts(_MAX_CONSTRUCTION_ATTEMPTS)
        raise FilterFullError(
            f"xor filter construction failed after "
            f"{_MAX_CONSTRUCTION_ATTEMPTS} attempts for {len(self._items)} items"
        )

    @staticmethod
    def _record_construction_attempts(attempts: int) -> None:
        # A seed-retry storm (attempts >> 1) is invisible in wall-clock
        # alone; the counter totals attempts across rebuilds and the
        # histogram shows their per-rebuild distribution in --metrics-out.
        reg = obs.registry()
        if reg is not None:
            reg.inc("amq.xor.construction_attempts", attempts)
            reg.observe("amq.xor.attempts_per_rebuild", attempts)

    def _try_build(self, construction_seed: int) -> bool:
        items = self._build_items
        if np is None or peel.scalar_spec_active() or len(items) < VECTOR_MIN_BATCH:
            triples = [self._hashes(item, construction_seed) for item in items]
            table = peel.peel_spec(triples, self._slots)
        else:
            h0, h1, h2, fp = xor_hashes_np(
                items,
                self._params.seed ^ (construction_seed * 0x9E37),
                self._slots // 3,
                self._fp_bits,
            )
            table = peel.peel_arrays(h0, h1, h2, fp, self._slots, self._fp_bits)
        if table is None:
            return False  # 2-core remained; retry with another seed
        if np is not None:
            self._table[:] = table
        else:
            self._table = table
        return True

    # -- AMQFilter interface ---------------------------------------------------------

    def _insert(self, item: bytes) -> None:
        if len(self._items) >= self.capacity:
            raise FilterFullError(
                f"xor filter at provisioned capacity {self.capacity}"
            )
        self._items.append(item)
        self._count += 1
        self._dirty = True

    def _contains(self, item: bytes) -> bool:
        if self._dirty:
            self._rebuild()
        h0, h1, h2, fp = self._hashes(item, self._construction_seed)
        return int(self._table[h0]) ^ int(self._table[h1]) ^ int(
            self._table[h2]
        ) == fp

    def _delete(self, item: bytes) -> bool:
        raise self._deletion_unsupported()

    # -- batch overrides -------------------------------------------------------

    def _insert_batch(self, items: Sequence[bytes]) -> None:
        """Buffered bulk insert: one capacity check and one dirty mark for
        the whole batch; the (expensive) rebuild happens on first query."""
        allowed = self.capacity - len(self._items)
        accepted = items[:allowed] if allowed < len(items) else items
        if accepted:
            self._items.extend(accepted)
            self._count += len(accepted)
            self._dirty = True
        if allowed < len(items):
            raise FilterFullError(
                f"xor filter at provisioned capacity {self.capacity}",
                inserted_count=len(accepted),
            )

    def _contains_batch(self, items: Sequence[bytes]) -> List[bool]:
        if self._dirty:
            self._rebuild()
        if np is None or len(items) < VECTOR_MIN_BATCH:
            return super()._contains_batch(items)
        h0, h1, h2, fp = xor_hashes_np(
            items,
            self._params.seed ^ (self._construction_seed * 0x9E37),
            self._slots // 3,
            self._fp_bits,
        )
        table = self._table
        hit = (
            table[h0.astype(np.intp)]
            ^ table[h1.astype(np.intp)]
            ^ table[h2.astype(np.intp)]
        ) == fp
        return hit.tolist()

    def load_factor(self) -> float:
        return self._count / self.capacity if self.capacity else 0.0

    # -- producer path ---------------------------------------------------------

    @classmethod
    def build_from_fingerprints(
        cls, params: FilterParams, items: Sequence[bytes]
    ) -> "XorFilter":
        """Bulk-build with an **eager** construction: the peel runs inside
        the ``amq.build`` span instead of deferring to the first query, so
        filter plans and manager rebuilds meter the real build cost (and
        hand back a filter whose first probe is cheap)."""
        with obs.span("amq.build", (("backend", cls.name),)):
            filt = cls(params)
            if items:
                filt.insert_batch(
                    items if isinstance(items, (list, tuple)) else list(items)
                )
                filt._rebuild()
            return filt

    def attach_source_items(self, items: Sequence[bytes]) -> None:
        """Restore the item buffer of a deserialized filter.

        ``to_bytes`` does not transport items (the table is one-way), so
        a ``from_bytes`` copy is query-only: its first insert would
        trigger a rebuild over an empty buffer and silently lose the
        advertised set. Callers that still hold the original sequence
        reattach it here to make the copy fully mutable again.
        """
        items = [bytes(item) for item in items]
        if len(items) != self._count:
            raise FilterSerializationError(
                f"xor filter holds {self._count} items; cannot attach a "
                f"source sequence of {len(items)}"
            )
        self._items = items

    # -- serialization ---------------------------------------------------------------

    def to_bytes(self) -> bytes:
        if self._dirty:
            self._rebuild()
        header = self._construction_seed.to_bytes(1, "big") + self._count.to_bytes(
            4, "big"
        )
        return header + bitpack.pack_uniform(self._table, self._fp_bits)

    @classmethod
    def expected_payload_bytes(cls, params: FilterParams) -> int:
        slots = xor_slot_count(params.capacity)
        fp_bits = xor_fingerprint_bits(params.fpp)
        return 5 + (slots * fp_bits + 7) // 8

    @classmethod
    def from_bytes(cls, params: FilterParams, payload: bytes) -> "XorFilter":
        filt = cls(params)
        expected = 5 + filt.size_in_bytes()
        if len(payload) != expected:
            raise FilterSerializationError(
                f"xor payload is {len(payload)} bytes, expected {expected}"
            )
        construction_seed = payload[0]
        if construction_seed >= _MAX_CONSTRUCTION_ATTEMPTS:
            raise FilterSerializationError(
                f"xor construction seed {construction_seed} out of range "
                f"(< {_MAX_CONSTRUCTION_ATTEMPTS})"
            )
        count = int.from_bytes(payload[1:5], "big")
        if count > params.capacity:
            raise FilterSerializationError(
                f"xor stored count {count} exceeds capacity {params.capacity}"
            )
        filt._construction_seed = construction_seed
        filt._count = count
        try:
            table = bitpack.unpack_uniform(payload[5:], filt._slots, filt._fp_bits)
        except ValueError as exc:
            raise FilterSerializationError(str(exc)) from exc
        if np is not None:
            filt._table[:] = table
        else:
            filt._table = list(table)
        filt._dirty = False
        # Items are not transported; a deserialized filter is query-only
        # in the sense that any insert triggers a from-scratch rebuild of
        # whatever items the new owner accumulates.
        return filt
