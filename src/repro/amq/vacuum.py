"""Vacuum filter (Wang, Zhou, Shi, Qian — VLDB 2019).

A cuckoo-filter variant that removes the power-of-two table-size
restriction, reclaiming the memory a cuckoo filter wastes when the item
count sits just above a power of two (e.g. the paper's 245-ICA working set).
Alternate-bucket candidates are confined to power-of-two *chunks* of the
table: for a bucket ``i`` in the chunk starting at ``base``, the partner is
``base + ((i - base) XOR (hash(fp) mod chunk_len))`` — an involution, so the
two candidate buckets of an item always map to each other, exactly like the
cuckoo filter's XOR trick but valid for any table size that is a multiple of
``chunk_len``.

Following the paper's multi-range design, fingerprints are split into two
classes: a chunk-local class using the XOR partner above, and a table-wide
class whose partner is the reflection ``(hash(fp) - B) mod m`` (also an
involution, valid for any ``m``). The roaming class is the load-balancing
safety valve that lets the table reach cuckoo-level occupancy despite the
tight, non-power-of-two sizing — the space win Figure 3 exercises. Buckets
are semi-sort compressed on the wire (see :mod:`repro.amq.semisort`) by
default, like the reference implementations.

Storage, batch kernels, and serialization live in the shared array-native
engine (:class:`repro.amq.bucketstore.BucketTableFilter`); this module
contributes only the chunked geometry and the two-class partner map.
"""

from __future__ import annotations

from repro.amq.base import FilterParams
from repro.amq.bucketstore import (
    DEFAULT_BUCKET_SIZE,
    DEFAULT_MAX_KICKS,
    BucketTableFilter,
)
from repro.amq.hashing import hash_int_np, np
from repro.amq.sizing import vacuum_geometry

__all__ = ["VacuumFilter", "DEFAULT_BUCKET_SIZE", "DEFAULT_MAX_KICKS"]


class VacuumFilter(BucketTableFilter):
    """Chunked-alternate-range cuckoo table over fingerprints."""

    name = "vacuum"
    _RNG_SALT = 0x7ACC

    def _geometry(self, params: FilterParams) -> int:
        num_buckets, self._chunk_len = vacuum_geometry(
            params.capacity, params.load_factor, self._bucket_size
        )
        return num_buckets

    @property
    def chunk_len(self) -> int:
        return self._chunk_len

    def _alt_index(self, index: int, fp: int) -> int:
        """Partner bucket of ``index`` for fingerprint ``fp``.

        Fingerprint class 0 (half the items) relocates table-wide via the
        reflection ``(h - B) mod m`` — an involution valid for any table
        size — and acts as the load-balancing safety valve the vacuum
        paper obtains from its largest alternate range. Class 1 relocates
        within a power-of-two chunk via the XOR trick, providing the
        locality of the smaller ranges. Both maps are involutions, so an
        item's two candidate buckets always point at each other.
        """
        h = self._fp_hash(fp)
        if fp & 1 == 0:
            return (h - index) % self._num_buckets
        base = index - (index % self._chunk_len)
        return base + ((index - base) ^ (h % self._chunk_len))

    def _alt_index_np(self, index, fp):
        """Vectorized :meth:`_alt_index` (both fingerprint classes)."""
        u64 = np.uint64
        nb = u64(self._num_buckets)
        chunk = u64(self._chunk_len)
        h = hash_int_np(fp, self._params.seed)
        # Class 0: (h - index) % m, computed without signed underflow.
        reflect = (h % nb + nb - index) % nb
        # Class 1: XOR within the power-of-two chunk.
        base = index - (index % chunk)
        chunked = base + ((index - base) ^ (h % chunk))
        return np.where(fp & u64(1) == 0, reflect, chunked)
