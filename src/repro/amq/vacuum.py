"""Vacuum filter (Wang, Zhou, Shi, Qian — VLDB 2019).

A cuckoo-filter variant that removes the power-of-two table-size
restriction, reclaiming the memory a cuckoo filter wastes when the item
count sits just above a power of two (e.g. the paper's 245-ICA working set).
Alternate-bucket candidates are confined to power-of-two *chunks* of the
table: for a bucket ``i`` in the chunk starting at ``base``, the partner is
``base + ((i - base) XOR (hash(fp) mod chunk_len))`` — an involution, so the
two candidate buckets of an item always map to each other, exactly like the
cuckoo filter's XOR trick but valid for any table size that is a multiple of
``chunk_len``.

Following the paper's multi-range design, fingerprints are split into two
classes: a chunk-local class using the XOR partner above, and a table-wide
class whose partner is the reflection ``(hash(fp) - B) mod m`` (also an
involution, valid for any ``m``). The roaming class is the load-balancing
safety valve that lets the table reach cuckoo-level occupancy despite the
tight, non-power-of-two sizing — the space win Figure 3 exercises. Buckets
are semi-sort compressed on the wire (see :mod:`repro.amq.semisort`) by
default, like the reference implementations.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.amq import semisort
from repro.amq.base import AMQFilter, FilterParams
from repro.amq.hashing import (
    VECTOR_MIN_BATCH,
    fingerprint,
    fingerprint_np,
    hash64,
    hash64_np,
    hash_int,
    hash_int_np,
    np,
)
from repro.amq.sizing import fingerprint_bits_for_fpp, vacuum_geometry
from repro.errors import FilterFullError, FilterSerializationError

DEFAULT_BUCKET_SIZE = 4
DEFAULT_MAX_KICKS = 500


class VacuumFilter(AMQFilter):
    """Chunked-alternate-range cuckoo table over fingerprints."""

    name = "vacuum"
    supports_deletion = True

    def __init__(
        self,
        params: FilterParams,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        max_kicks: int = DEFAULT_MAX_KICKS,
        semi_sort: bool = True,
    ) -> None:
        super().__init__(params)
        self._bucket_size = bucket_size
        self._max_kicks = max_kicks
        self._fp_bits = fingerprint_bits_for_fpp(params.fpp, bucket_size)
        self._semi_sort = (
            semi_sort
            and bucket_size == semisort.BUCKET_SIZE
            and self._fp_bits >= semisort.MIN_FP_BITS
        )
        self._num_buckets, self._chunk_len = vacuum_geometry(
            params.capacity, params.load_factor, bucket_size
        )
        self._table = [0] * (self._num_buckets * bucket_size)
        self._rng = random.Random(params.seed ^ 0x7ACC)

    # -- geometry --------------------------------------------------------------

    @property
    def bucket_size(self) -> int:
        return self._bucket_size

    @property
    def num_buckets(self) -> int:
        return self._num_buckets

    @property
    def chunk_len(self) -> int:
        return self._chunk_len

    @property
    def fingerprint_bits(self) -> int:
        return self._fp_bits

    def _fingerprint(self, item: bytes) -> int:
        return fingerprint(item, self._fp_bits, self._params.seed)

    def _index1(self, item: bytes) -> int:
        return hash64(item, self._params.seed) % self._num_buckets

    def _alt_index(self, index: int, fp: int) -> int:
        """Partner bucket of ``index`` for fingerprint ``fp``.

        Fingerprint class 0 (half the items) relocates table-wide via the
        reflection ``(h - B) mod m`` — an involution valid for any table
        size — and acts as the load-balancing safety valve the vacuum
        paper obtains from its largest alternate range. Class 1 relocates
        within a power-of-two chunk via the XOR trick, providing the
        locality of the smaller ranges. Both maps are involutions, so an
        item's two candidate buckets always point at each other.
        """
        h = hash_int(fp, self._params.seed)
        if fp & 1 == 0:
            return (h - index) % self._num_buckets
        base = index - (index % self._chunk_len)
        return base + ((index - base) ^ (h % self._chunk_len))

    def _bucket_slice(self, index: int) -> "tuple[int, int]":
        start = index * self._bucket_size
        return start, start + self._bucket_size

    def _bucket_insert(self, index: int, fp: int) -> bool:
        start, end = self._bucket_slice(index)
        for slot in range(start, end):
            if self._table[slot] == 0:
                self._table[slot] = fp
                return True
        return False

    def _bucket_contains(self, index: int, fp: int) -> bool:
        start, end = self._bucket_slice(index)
        return fp in self._table[start:end]

    def _bucket_delete(self, index: int, fp: int) -> bool:
        start, end = self._bucket_slice(index)
        for slot in range(start, end):
            if self._table[slot] == fp:
                self._table[slot] = 0
                return True
        return False

    # -- AMQFilter interface -----------------------------------------------------

    def _insert(self, item: bytes) -> None:
        fp = self._fingerprint(item)
        i1 = self._index1(item)
        i2 = self._alt_index(i1, fp)
        self._insert_fp(fp, i1, i2)

    def _insert_fp(self, fp: int, i1: int, i2: int) -> None:
        """Place a precomputed fingerprint (shared by insert/insert_batch
        so both paths drive the eviction rng identically)."""
        if self._bucket_insert(i1, fp) or self._bucket_insert(i2, fp):
            self._count += 1
            return
        self._kick(fp, i1, i2)

    def _kick(self, fp: int, i1: int, i2: int) -> None:
        index = self._rng.choice((i1, i2))
        path: List[int] = []
        for _ in range(self._max_kicks):
            start, _ = self._bucket_slice(index)
            victim_slot = start + self._rng.randrange(self._bucket_size)
            path.append(victim_slot)
            fp, self._table[victim_slot] = self._table[victim_slot], fp
            index = self._alt_index(index, fp)
            if self._bucket_insert(index, fp):
                self._count += 1
                return
        # Unwind the swap chain in reverse so a failed insert leaves the
        # table exactly as it was (see CuckooFilter._kick).
        for slot in reversed(path):
            fp, self._table[slot] = self._table[slot], fp
        raise FilterFullError(
            f"vacuum filter insert failed after {self._max_kicks} kicks "
            f"(load factor {self.load_factor():.3f})"
        )

    # -- batch overrides ---------------------------------------------------------

    def _alt_index_np(self, index: "np.ndarray", fp: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`_alt_index` (both fingerprint classes)."""
        u64 = np.uint64
        nb = u64(self._num_buckets)
        chunk = u64(self._chunk_len)
        h = hash_int_np(fp, self._params.seed)
        # Class 0: (h - index) % m, computed without signed underflow.
        reflect = (h % nb + nb - index) % nb
        # Class 1: XOR within the power-of-two chunk.
        base = index - (index % chunk)
        chunked = base + ((index - base) ^ (h % chunk))
        return np.where(fp & u64(1) == 0, reflect, chunked)

    def _batch_candidates(self, items: Sequence[bytes]):
        seed = self._params.seed
        i1 = hash64_np(items, seed) % np.uint64(self._num_buckets)
        fps = fingerprint_np(items, self._fp_bits, seed)
        return fps, i1, self._alt_index_np(i1, fps)

    def _insert_batch(self, items: Sequence[bytes]) -> None:
        if np is None or len(items) < VECTOR_MIN_BATCH:
            return super()._insert_batch(items)
        fps, i1s, i2s = self._batch_candidates(items)
        table = self._table
        bucket_size = self._bucket_size
        for index in range(len(items)):
            fp = int(fps[index])
            b1 = int(i1s[index])
            b2 = int(i2s[index])
            placed = False
            for b in (b1, b2):
                start = b * bucket_size
                for slot in range(start, start + bucket_size):
                    if table[slot] == 0:
                        table[slot] = fp
                        placed = True
                        break
                if placed:
                    break
            if placed:
                self._count += 1
                continue
            try:
                self._kick(fp, b1, b2)
            except FilterFullError as exc:
                exc.inserted_count = index
                raise

    def _contains_batch(self, items: Sequence[bytes]) -> List[bool]:
        if np is None or len(items) < VECTOR_MIN_BATCH:
            return super()._contains_batch(items)
        fps, i1, i2 = self._batch_candidates(items)
        buckets = np.array(self._table, dtype=np.uint64).reshape(
            self._num_buckets, self._bucket_size
        )
        want = fps[:, None]
        hit = (buckets[i1.astype(np.intp)] == want).any(axis=1)
        hit |= (buckets[i2.astype(np.intp)] == want).any(axis=1)
        return hit.tolist()

    def _delete_batch(self, items: Sequence[bytes]) -> List[bool]:
        if np is None or len(items) < VECTOR_MIN_BATCH:
            return super()._delete_batch(items)
        fps, i1s, i2s = self._batch_candidates(items)
        table = self._table
        bucket_size = self._bucket_size
        out: List[bool] = []
        for index in range(len(items)):
            fp = int(fps[index])
            removed = False
            for b in (int(i1s[index]), int(i2s[index])):
                start = b * bucket_size
                for slot in range(start, start + bucket_size):
                    if table[slot] == fp:
                        table[slot] = 0
                        removed = True
                        break
                if removed:
                    break
            if removed:
                self._count -= 1
            out.append(removed)
        return out

    def _contains(self, item: bytes) -> bool:
        fp = self._fingerprint(item)
        i1 = self._index1(item)
        if self._bucket_contains(i1, fp):
            return True
        return self._bucket_contains(self._alt_index(i1, fp), fp)

    def _delete(self, item: bytes) -> bool:
        fp = self._fingerprint(item)
        i1 = self._index1(item)
        if self._bucket_delete(i1, fp):
            self._count -= 1
            return True
        if self._bucket_delete(self._alt_index(i1, fp), fp):
            self._count -= 1
            return True
        return False

    def slot_count(self) -> int:
        return self._num_buckets * self._bucket_size

    def effective_fpp(self) -> float:
        """A negative lookup probes 2 buckets (2b slots); each occupied
        slot matches with probability 2^-f, so at occupancy alpha the
        rate is ``1 - (1 - 2^-f)^(2 b alpha)``."""
        alpha = self.load_factor()
        per_slot = 2.0 ** -self._fp_bits
        return 1.0 - (1.0 - per_slot) ** (2 * self._bucket_size * alpha)

    @property
    def semi_sort(self) -> bool:
        return self._semi_sort

    def size_in_bytes(self) -> int:
        if self._semi_sort:
            return semisort.packed_size_bytes(self._num_buckets, self._fp_bits)
        total_bits = self.slot_count() * self._fp_bits
        return (total_bits + 7) // 8

    # -- serialization -------------------------------------------------------------

    def to_bytes(self) -> bytes:
        if self._semi_sort:
            return semisort.pack_table(self._table, self._fp_bits)
        bits = self._fp_bits
        acc = 0
        acc_bits = 0
        out = bytearray()
        for fp in self._table:
            acc |= fp << acc_bits
            acc_bits += bits
            while acc_bits >= 8:
                out.append(acc & 0xFF)
                acc >>= 8
                acc_bits -= 8
        if acc_bits:
            out.append(acc & 0xFF)
        return bytes(out)

    @classmethod
    def from_bytes(
        cls,
        params: FilterParams,
        payload: bytes,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        max_kicks: int = DEFAULT_MAX_KICKS,
        semi_sort: bool = True,
    ) -> "VacuumFilter":
        filt = cls(
            params, bucket_size=bucket_size, max_kicks=max_kicks, semi_sort=semi_sort
        )
        expected = filt.size_in_bytes()
        if len(payload) != expected:
            raise FilterSerializationError(
                f"vacuum payload is {len(payload)} bytes, expected {expected}"
            )
        if filt._semi_sort:
            try:
                table = semisort.unpack_table(payload, filt._num_buckets, filt._fp_bits)
            except ValueError as exc:
                raise FilterSerializationError(str(exc)) from exc
            filt._table = table
            filt._count = sum(1 for fp in table if fp)
            return filt
        bits = filt._fp_bits
        mask = (1 << bits) - 1
        acc = 0
        acc_bits = 0
        slot = 0
        total_slots = filt.slot_count()
        count = 0
        for byte in payload:
            acc |= byte << acc_bits
            acc_bits += 8
            while acc_bits >= bits and slot < total_slots:
                fp = acc & mask
                filt._table[slot] = fp
                if fp:
                    count += 1
                acc >>= bits
                acc_bits -= bits
                slot += 1
        if slot != total_slots:
            raise FilterSerializationError(
                f"vacuum payload decoded {slot} slots, expected {total_slots}"
            )
        filt._count = count
        return filt
