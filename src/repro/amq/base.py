"""Common interface for approximate-membership-query filters.

The paper treats the filter as a pluggable component ("the client can
advertise ... the specific filter used (e.g., Quotient, Cuckoo)", §4.2), so
every structure in :mod:`repro.amq` implements this single abstract base:
items are arbitrary byte strings (we use the SHA-256 of the ICA certificate's
DER encoding, see :mod:`repro.core.cache`), insertions may fail with
:class:`~repro.errors.FilterFullError`, and deletions are supported by every
dynamically-updatable structure.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, Iterable, List, Sequence

from repro import obs
from repro.errors import (
    ConfigurationError,
    DeletionUnsupportedError,
    FilterDeleteError,
    FilterFullError,
)


@dataclass(frozen=True)
class FilterParams:
    """Construction parameters shared by all filter types.

    Attributes:
        capacity: Number of items the filter is provisioned to hold at the
            target load factor.
        fpp: Target false-positive probability (epsilon in the paper).
        load_factor: Target occupancy at which ``capacity`` items fit; this
            is the x-axis of Figure 3-left.
        seed: Hash seed; both endpoints of a handshake must agree on it, so
            it is carried in the serialized wire image.
    """

    capacity: int
    fpp: float = 1e-3
    load_factor: float = 0.95
    seed: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {self.capacity}")
        if not 0.0 < self.fpp < 1.0:
            raise ConfigurationError(f"fpp must be in (0, 1), got {self.fpp}")
        if not 0.0 < self.load_factor <= 1.0:
            raise ConfigurationError(
                f"load_factor must be in (0, 1], got {self.load_factor}"
            )
        if self.seed < 0:
            raise ConfigurationError(f"seed must be non-negative, got {self.seed}")


class AMQFilter(ABC):
    """Abstract approximate-membership-query filter.

    Implementations guarantee **no false negatives**: after ``insert(x)``
    succeeds (and until ``delete(x)``), ``contains(x)`` is True. A
    ``contains`` hit for an item never inserted happens with probability at
    most roughly ``params.fpp`` at the target load factor.

    The public operations (``insert``/``contains``/``delete`` and their
    batch forms) are concrete template methods: they record ``amq.*``
    metrics when :mod:`repro.obs` is enabled, then delegate to the
    underscore-prefixed implementation hooks subclasses provide. Counters
    count *attempted* operations (recorded on entry), so a batch call and
    the equivalent scalar loop always account identically, including on
    mid-batch overflow.
    """

    #: Short stable name used in wire images and experiment tables.
    name: ClassVar[str] = "abstract"
    #: Whether delete() is supported (all paper candidates support it).
    supports_deletion: ClassVar[bool] = True

    def __init__(self, params: FilterParams) -> None:
        self._params = params
        self._count = 0
        # Label tuples precomputed once so the enabled hot path does no
        # allocation beyond the counter bump itself.
        self._obs_labels = {
            op: (("backend", self.name), ("op", op))
            for op in ("insert", "contains", "delete")
        }

    # -- public API (instrumented template methods) -------------------------

    def insert(self, item: bytes) -> None:
        """Add ``item``; raises FilterFullError when it cannot be placed."""
        reg = obs.registry()
        if reg is not None:
            reg.inc("amq.ops", 1, self._obs_labels["insert"])
        self._insert(item)

    def contains(self, item: bytes) -> bool:
        """Approximate membership test (no false negatives)."""
        reg = obs.registry()
        if reg is not None:
            reg.inc("amq.ops", 1, self._obs_labels["contains"])
        return self._contains(item)

    def delete(self, item: bytes) -> bool:
        """Remove one occurrence of ``item``; returns True when a matching
        fingerprint was found and removed.
        """
        reg = obs.registry()
        if reg is not None:
            reg.inc("amq.ops", 1, self._obs_labels["delete"])
        return self._delete(item)

    def _record_batch(self, op: str, size: int) -> None:
        reg = obs.registry()
        if reg is not None:
            labels = self._obs_labels[op]
            reg.inc("amq.ops", size, labels)
            reg.inc("amq.batch.calls", 1, labels)
            reg.observe("amq.batch.size", size, labels)

    # -- abstract core -----------------------------------------------------

    @abstractmethod
    def _insert(self, item: bytes) -> None:
        """Implementation hook for :meth:`insert`."""

    @abstractmethod
    def _contains(self, item: bytes) -> bool:
        """Implementation hook for :meth:`contains`."""

    @abstractmethod
    def _delete(self, item: bytes) -> bool:
        """Implementation hook for :meth:`delete`."""

    @abstractmethod
    def size_in_bytes(self) -> int:
        """Size of the filter's payload on the wire (excluding the
        serialization header), as plotted in Figures 3 and 4.
        """

    @abstractmethod
    def to_bytes(self) -> bytes:
        """Serialize the table payload (header added by
        :mod:`repro.amq.serialization`)."""

    @classmethod
    @abstractmethod
    def from_bytes(cls, params: FilterParams, payload: bytes) -> "AMQFilter":
        """Reconstruct a filter from ``to_bytes`` output."""

    @classmethod
    def expected_payload_bytes(cls, params: FilterParams) -> int:
        """Exact payload size (bytes) a filter built with ``params``
        serializes to — the geometry check
        :func:`repro.amq.serialization.deserialize_filter` runs before
        handing a payload to :meth:`from_bytes`. The default derives it
        from a freshly-built (empty) filter; backends whose payload
        carries extra header fields override it.
        """
        return cls(params).size_in_bytes()

    @classmethod
    def build_from_fingerprints(
        cls, params: FilterParams, items: Sequence[bytes]
    ) -> "AMQFilter":
        """Bulk-build a filter of this type holding exactly ``items``.

        This is the one construction path every producer (filter plans,
        manager rebuilds, the session-sim client) funnels through: it
        constructs the empty structure and feeds the whole working set to
        the vectorized ``insert_batch`` kernels in a single call, timed
        under the ``amq.build`` span so build-path wins are visible in
        metrics exports. Semantics are identical to a scalar insert loop
        (same table bytes, same overflow behaviour).
        """
        with obs.span("amq.build", (("backend", cls.name),)):
            filt = cls(params)
            if items:
                filt.insert_batch(
                    items if isinstance(items, (list, tuple)) else list(items)
                )
            return filt

    def attach_source_items(self, items: Sequence[bytes]) -> None:
        """Reattach the source item sequence to a deserialized filter.

        Most backends store items directly and need nothing here (the
        default is a no-op). Static structures that buffer items and
        reconstruct on mutation (the xor family) cannot recover the set
        from their table, so a bare ``from_bytes`` copy is query-only:
        its first insert would rebuild from an empty buffer and silently
        drop everything the wire image held. Producers that still know
        the original items (e.g. the memoized ``FilterPlan.build``) call
        this after rehydration to restore full mutability.
        """

    # -- shared behaviour ---------------------------------------------------

    @property
    def params(self) -> FilterParams:
        return self._params

    @property
    def capacity(self) -> int:
        return self._params.capacity

    def __contains__(self, item: bytes) -> bool:
        return self.contains(item)

    def __len__(self) -> int:
        """Number of items currently stored."""
        return self._count

    # -- batch API ----------------------------------------------------------
    #
    # The batch operations are observationally identical to running the
    # scalar loop in batch order (same final state, same answers, same
    # exceptions) — that equivalence is what tests/amq/
    # test_batch_differential.py enforces for every registered backend.
    # The public methods instrument then delegate; subclasses override the
    # ``_x_batch`` hooks with vectorized implementations, and the generic
    # underscore loops here are both the fallback (no numpy, tiny batches)
    # and the executable specification. The hooks call the underscore
    # scalar core — never the public methods — so no operation is ever
    # double-counted.

    def insert_batch(self, items: Sequence[bytes]) -> None:
        """Insert ``items`` in order.

        Contract (all backends):

        * **Ordering** — items are inserted in batch order; the final
          state equals a scalar ``insert`` loop over the same sequence.
        * **Overflow** — inserts are *not* atomic. On overflow the batch
          raises :class:`~repro.errors.FilterFullError` with
          ``inserted_count`` set to the number of fully-inserted leading
          items (prefix-insert semantics); the failing item itself may
          have displaced fingerprints exactly as the equivalent scalar
          ``insert`` would have (cuckoo kick chains).
        * **Duplicates** — permitted, with the same multiplicity
          semantics as the scalar operation.
        """
        self._record_batch("insert", len(items))
        self._insert_batch(items)

    def contains_batch(self, items: Sequence[bytes]) -> List[bool]:
        """Membership answers for ``items``, in order — exactly
        ``[self.contains(x) for x in items]`` (no false negatives)."""
        self._record_batch("contains", len(items))
        return self._contains_batch(items)

    def delete_batch(self, items: Sequence[bytes]) -> List[bool]:
        """Delete ``items`` in order; per-item success flags.

        Equivalent to ``[self.delete(x) for x in items]``: earlier
        deletions in the batch are visible to later ones (deleting the
        same fingerprint twice only succeeds twice if it was stored
        twice). Raises :class:`~repro.errors.DeletionUnsupportedError`
        on structures without deletion, like the scalar operation.
        """
        self._record_batch("delete", len(items))
        return self._delete_batch(items)

    def delete_batch_strict(self, items: Sequence[bytes]) -> None:
        """Delete ``items``, all-or-nothing.

        The delta applier's removal path: a patch that names an item the
        table does not hold is malformed, and a malformed patch must not
        corrupt the table. On the first miss the already-deleted prefix
        is restored and :class:`~repro.errors.FilterDeleteError` is
        raised with ``missing_index`` set; the table is then
        byte-identical to its pre-call state. Duplicate items in the
        batch are rejected up front — each physical copy can satisfy one
        deletion, so a repeated fingerprint is the same malformation as
        a missing one.
        """
        if len(set(items)) != len(items):
            raise FilterDeleteError(
                "strict delete batch contains duplicate items",
                missing_index=None,
            )
        self._record_batch("delete", len(items))
        self._delete_batch_strict(items)

    def _delete_batch_strict(self, items: Sequence[bytes]) -> None:
        """Generic strict-delete: scalar loop, unwind on first miss.

        Correct for history-independent tables (counting bloom, quotient)
        where re-inserting the deleted prefix restores the exact bytes.
        Bucket tables override this with an exact slot-level undo —
        their generic re-insert could place a fingerprint in the
        alternate bucket (and a kick chain would draw rng), which would
        not be byte-identical.
        """
        for index, item in enumerate(items):
            if not self._delete(item):
                for deleted in reversed(items[:index]):
                    self._reinsert_deleted(deleted)
                raise FilterDeleteError(
                    f"strict delete batch item {index} is not stored",
                    missing_index=index,
                )

    def _reinsert_deleted(self, item: bytes) -> None:
        """Restore one item removed during a failed strict delete.

        The freed slot guarantees space, so the default scalar insert
        cannot overflow; history-independent backends land back on the
        exact pre-delete bytes.
        """
        self._insert(item)

    def _insert_batch(self, items: Sequence[bytes]) -> None:
        for index, item in enumerate(items):
            try:
                self._insert(item)
            except FilterFullError as exc:
                exc.inserted_count = index
                raise

    def _contains_batch(self, items: Sequence[bytes]) -> List[bool]:
        return [self._contains(item) for item in items]

    def _delete_batch(self, items: Sequence[bytes]) -> List[bool]:
        return [self._delete(item) for item in items]

    def insert_all(self, items: Iterable[bytes]) -> int:
        """Insert every item (batched); returns how many were inserted."""
        batch = items if isinstance(items, (list, tuple)) else list(items)
        self.insert_batch(batch)
        return len(batch)

    def load_factor(self) -> float:
        """Current occupancy relative to the structure's slot count."""
        slots = self.slot_count()
        return self._count / slots if slots else 0.0

    @abstractmethod
    def slot_count(self) -> int:
        """Total number of item slots in the underlying table."""

    def effective_fpp(self) -> float:
        """Estimated false-positive probability *at current occupancy*.

        The construction-time ``params.fpp`` is a worst-case target at the
        provisioned load; a partially-filled structure answers negative
        queries with a proportionally smaller error. Experiments use this
        to explain observed false-positive counts (see EXPERIMENTS.md).
        Subclasses override with their structure's analytic form; the
        base falls back to the configured target.
        """
        return self._params.fpp

    def bits_per_item(self) -> float:
        """Space efficiency at current occupancy (bits per stored item)."""
        if self._count == 0:
            return float("inf")
        return self.size_in_bytes() * 8 / self._count

    def _deletion_unsupported(self) -> "DeletionUnsupportedError":
        return DeletionUnsupportedError(
            f"{self.name} filter does not support deletion; rebuild instead"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} items={self._count} "
            f"capacity={self.capacity} fpp={self._params.fpp} "
            f"bytes={self.size_in_bytes()}>"
        )
