"""Analytic size/FPP geometry for every filter type.

These closed-form models drive the feasibility study of Section 5.2:
filter size versus load factor (Fig. 3-left), versus capacity
(Fig. 3-right) and versus target false-positive probability (Fig. 4).
They are also the single source of table geometry for the concrete filter
implementations, so analytic predictions and measured ``size_in_bytes()``
agree exactly.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

#: Slots per bucket used by the cuckoo-style structures (Fan et al. use 4).
DEFAULT_BUCKET_SIZE = 4


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= n (n >= 1)."""
    if n < 1:
        raise ConfigurationError(f"need n >= 1, got {n}")
    return 1 << (n - 1).bit_length()


def fingerprint_bits_for_fpp(fpp: float, bucket_size: int = DEFAULT_BUCKET_SIZE) -> int:
    """Fingerprint width for a cuckoo-style filter.

    A negative lookup probes ``2 * bucket_size`` slots, each matching a
    random fingerprint with probability ``2^-f``, so
    ``f = ceil(log2(2 * bucket_size / fpp))``.
    """
    if not 0.0 < fpp < 1.0:
        raise ConfigurationError(f"fpp must be in (0, 1), got {fpp}")
    bits = math.ceil(math.log2(2 * bucket_size / fpp))
    return max(2, min(32, bits))


def remainder_bits_for_fpp(fpp: float) -> int:
    """Remainder width for a quotient filter: ``r = ceil(log2(1/fpp))``
    (the quotient filter's FPP is about ``load_factor * 2^-r``)."""
    if not 0.0 < fpp < 1.0:
        raise ConfigurationError(f"fpp must be in (0, 1), got {fpp}")
    return max(2, min(32, math.ceil(-math.log2(fpp))))


# ---------------------------------------------------------------------------
# Geometry helpers shared with the implementations
# ---------------------------------------------------------------------------


def cuckoo_geometry(
    capacity: int,
    load_factor: float,
    bucket_size: int = DEFAULT_BUCKET_SIZE,
) -> int:
    """Number of buckets for a cuckoo filter (power of two)."""
    min_buckets = math.ceil(capacity / (bucket_size * load_factor))
    return next_power_of_two(max(1, min_buckets))


def vacuum_geometry(
    capacity: int,
    load_factor: float,
    bucket_size: int = DEFAULT_BUCKET_SIZE,
) -> "tuple[int, int]":
    """(num_buckets, chunk_len) for a vacuum filter.

    The vacuum filter's headline trick (Wang et al., VLDB '19) is that the
    table need not be a power of two: alternate-bucket candidates are
    confined to power-of-two *chunks*, so the table only has to be a
    multiple of the chunk length. We pick the chunk length near
    ``sqrt(num_buckets)``, which keeps both the rounding waste and the
    chunk-local collision pressure low.
    """
    min_buckets = max(1, math.ceil(capacity / (bucket_size * load_factor)))
    full_table = next_power_of_two(min_buckets)
    chunk = 8
    while chunk < full_table:
        num_buckets = math.ceil(min_buckets / chunk) * chunk
        n_chunks = num_buckets // chunk
        # Only the chunk-local fingerprint class (half the items) is
        # pinned to a chunk; class-0 items relocate table-wide and act as
        # the safety valve, as in the vacuum paper's multi-range design.
        expected_local = 0.5 * capacity / n_chunks
        chunk_slots = chunk * bucket_size
        # Load test (the vacuum paper's range-size selection): expected
        # chunk-local load plus a fluctuation margin must fit below the
        # occupancy a 4-slot-bucket cuckoo table reliably reaches. The
        # margin grows with the chunk count so the *whole-table* failure
        # probability stays bounded as tables scale up.
        sigmas = 2.5 + math.log10(max(1.0, n_chunks))
        margin = sigmas * math.sqrt(expected_local) + 3
        if expected_local + margin <= chunk_slots * 0.97:
            return num_buckets, chunk
        chunk *= 2
    # Degenerate case: a single power-of-two chunk (cuckoo geometry).
    return full_table, full_table


def quotient_geometry(capacity: int, load_factor: float) -> int:
    """Number of slots for a quotient filter (power of two, >= 8 so the
    metadata bitmaps pack to whole bytes)."""
    return next_power_of_two(max(8, math.ceil(capacity / load_factor)))


# ---------------------------------------------------------------------------
# Analytic sizes (bits)
# ---------------------------------------------------------------------------


def bloom_size_bits(capacity: int, fpp: float) -> int:
    """Space-optimal Bloom filter size: ``m = -n ln(eps) / ln(2)^2``."""
    return math.ceil(-capacity * math.log(fpp) / (math.log(2) ** 2))


def _bucket_table_bits(
    buckets: int, fp_bits: int, bucket_size: int, semi_sort: bool
) -> int:
    if semi_sort and bucket_size == 4 and fp_bits >= 5:
        # Semi-sorting (Fan et al. §5.2): 12-bit nibble-multiset index plus
        # four (f-4)-bit high parts = 4f - 4 bits per bucket.
        return buckets * (4 * fp_bits - 4)
    return buckets * bucket_size * fp_bits


def cuckoo_size_bits(
    capacity: int,
    fpp: float,
    load_factor: float = 0.95,
    bucket_size: int = DEFAULT_BUCKET_SIZE,
    semi_sort: bool = True,
) -> int:
    buckets = cuckoo_geometry(capacity, load_factor, bucket_size)
    fp_bits = fingerprint_bits_for_fpp(fpp, bucket_size)
    return _bucket_table_bits(buckets, fp_bits, bucket_size, semi_sort)


def vacuum_size_bits(
    capacity: int,
    fpp: float,
    load_factor: float = 0.95,
    bucket_size: int = DEFAULT_BUCKET_SIZE,
    semi_sort: bool = True,
) -> int:
    buckets, _ = vacuum_geometry(capacity, load_factor, bucket_size)
    fp_bits = fingerprint_bits_for_fpp(fpp, bucket_size)
    return _bucket_table_bits(buckets, fp_bits, bucket_size, semi_sort)


def quotient_size_bits(capacity: int, fpp: float, load_factor: float = 0.95) -> int:
    slots = quotient_geometry(capacity, load_factor)
    return slots * (remainder_bits_for_fpp(fpp) + 3)


def xor_size_bits(capacity: int, fpp: float) -> int:
    """XOR filter: ~1.23 slots/item at exactly 2^-f FPP (static)."""
    slots = int(1.23 * max(1, capacity)) + 32
    slots += (-slots) % 3
    f = max(2, min(32, math.ceil(-math.log2(fpp))))
    return slots * f


def counting_bloom_size_bits(capacity: int, fpp: float) -> int:
    """Counting Bloom filter: 4-bit counters instead of bits (4x)."""
    return 4 * bloom_size_bits(capacity, fpp)


_SIZE_MODELS = {
    "bloom": lambda n, fpp, lf, b: bloom_size_bits(n, fpp),
    "counting-bloom": lambda n, fpp, lf, b: counting_bloom_size_bits(n, fpp),
    "cuckoo": cuckoo_size_bits,
    "vacuum": vacuum_size_bits,
    "quotient": lambda n, fpp, lf, b: quotient_size_bits(n, fpp, lf),
    "xor": lambda n, fpp, lf, b: xor_size_bits(n, fpp),
}


def size_bytes_for(
    kind: str,
    capacity: int,
    fpp: float,
    load_factor: float = 0.95,
    bucket_size: int = DEFAULT_BUCKET_SIZE,
) -> int:
    """Analytic wire size in bytes of a ``kind`` filter."""
    try:
        model = _SIZE_MODELS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown filter kind {kind!r}; expected one of {sorted(_SIZE_MODELS)}"
        ) from None
    if kind in ("cuckoo", "vacuum"):
        bits = model(capacity, fpp, load_factor, bucket_size)
    else:
        bits = model(capacity, fpp, load_factor, bucket_size)
    return (bits + 7) // 8


def max_capacity_within(
    kind: str,
    budget_bytes: int,
    fpp: float,
    load_factor: float = 0.95,
    bucket_size: int = DEFAULT_BUCKET_SIZE,
) -> int:
    """Largest capacity whose analytic size fits in ``budget_bytes``.

    This answers the paper's §5.2 planning question: how many ICAs fit in
    the ~550 bytes left in a PQ ClientHello? Returns 0 when even a single
    item does not fit.
    """
    if budget_bytes < 1:
        return 0
    if size_bytes_for(kind, 1, fpp, load_factor, bucket_size) > budget_bytes:
        return 0
    lo, hi = 1, 2
    while size_bytes_for(kind, hi, fpp, load_factor, bucket_size) <= budget_bytes:
        lo = hi
        hi *= 2
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if size_bytes_for(kind, mid, fpp, load_factor, bucket_size) <= budget_bytes:
            lo = mid
        else:
            hi = mid
    return lo
