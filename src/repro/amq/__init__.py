"""Approximate-membership-query (AMQ) filters.

Implements, from scratch, every probabilistic filter the paper evaluates
(Section 4.1 / Figure 3): the classic Bloom filter and its counting variant
as baselines, and the three dynamically-updatable structures — Cuckoo
(Fan et al., CoNEXT '14), Vacuum (Wang et al., VLDB '19) and the
(counting) Quotient filter (Bender et al. / Pandey et al., SIGMOD '17).

All filters share the :class:`~repro.amq.base.AMQFilter` interface:
``insert`` / ``contains`` / ``delete`` plus size and load-factor accounting,
and can be serialized to the compact wire format carried inside the
IC-suppression ClientHello extension (:mod:`repro.amq.serialization`).
"""

from repro.amq.base import AMQFilter, FilterParams
from repro.amq.hashing import HAVE_NUMPY, VECTOR_MIN_BATCH
from repro.amq.bloom import BloomFilter, CountingBloomFilter
from repro.amq.cuckoo import CuckooFilter
from repro.amq.vacuum import VacuumFilter
from repro.amq.quotient import QuotientFilter
from repro.amq.xor import XorFilter
from repro.amq.serialization import (
    serialize_filter,
    deserialize_filter,
    filter_type_id,
    filter_class_for_name,
    canonical_params,
    FILTER_REGISTRY,
)
from repro.amq.delta import (
    NATIVE_DELTA_FAMILIES,
    DeltaApplier,
    DeltaPublisher,
    FilterDelta,
    FilterSnapshot,
    build_filter_at,
    delta_seed,
    deserialize_delta,
    serialize_delta,
)
from repro.amq.sizing import (
    bloom_size_bits,
    cuckoo_size_bits,
    vacuum_size_bits,
    quotient_size_bits,
    fingerprint_bits_for_fpp,
    size_bytes_for,
    max_capacity_within,
)

__all__ = [
    "AMQFilter",
    "FilterParams",
    "HAVE_NUMPY",
    "VECTOR_MIN_BATCH",
    "BloomFilter",
    "CountingBloomFilter",
    "CuckooFilter",
    "VacuumFilter",
    "QuotientFilter",
    "XorFilter",
    "serialize_filter",
    "deserialize_filter",
    "filter_type_id",
    "filter_class_for_name",
    "canonical_params",
    "FILTER_REGISTRY",
    "NATIVE_DELTA_FAMILIES",
    "DeltaApplier",
    "DeltaPublisher",
    "FilterDelta",
    "FilterSnapshot",
    "build_filter_at",
    "delta_seed",
    "deserialize_delta",
    "serialize_delta",
    "bloom_size_bits",
    "cuckoo_size_bits",
    "vacuum_size_bits",
    "quotient_size_bits",
    "fingerprint_bits_for_fpp",
    "size_bytes_for",
    "max_capacity_within",
]
