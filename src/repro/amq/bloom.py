"""Bloom filter and counting Bloom filter.

The plain Bloom filter (Bloom, 1970) is the baseline AMQ structure the paper
mentions but rules out for deployment because "in its basic form, it does not
allow for element removal without having to rebuild the whole filter" (§4.1).
We implement it anyway — it anchors the space comparisons in the ablation
benchmarks — together with the 4-bit counting variant that restores deletion
at 4x the space.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.amq.base import AMQFilter, FilterParams
from repro.amq.hashing import (
    VECTOR_MIN_BATCH,
    double_hashes,
    double_hashes_np,
    np,
)
from repro.errors import FilterFullError, FilterSerializationError


def _optimal_geometry(capacity: int, fpp: float) -> "tuple[int, int]":
    """Return (bit count m, hash count k) minimizing space for the target
    false-positive probability: ``m = -n ln(eps) / ln(2)^2``,
    ``k = (m/n) ln 2``.
    """
    m = math.ceil(-capacity * math.log(fpp) / (math.log(2) ** 2))
    k = max(1, round(m / capacity * math.log(2)))
    return m, k


class BloomFilter(AMQFilter):
    """Classic k-hash Bloom filter over a flat bit array."""

    name = "bloom"
    supports_deletion = False

    def __init__(self, params: FilterParams) -> None:
        super().__init__(params)
        self._bits, self._k = _optimal_geometry(params.capacity, params.fpp)
        self._array = bytearray((self._bits + 7) // 8)
        self._refresh_view()

    def _refresh_view(self) -> None:
        # Persistent writable uint8 view over the backing bytearray; batch
        # kernels index it directly with zero per-call materialization.
        self._buf = None if np is None else np.frombuffer(self._array, dtype=np.uint8)

    # -- bit helpers ---------------------------------------------------------

    def _positions(self, item: bytes):
        for h in double_hashes(item, self._k, self._params.seed):
            yield h % self._bits

    def _get_bit(self, pos: int) -> bool:
        return bool(self._array[pos >> 3] & (1 << (pos & 7)))

    def _set_bit(self, pos: int) -> None:
        self._array[pos >> 3] |= 1 << (pos & 7)

    # -- AMQFilter interface --------------------------------------------------

    def _insert(self, item: bytes) -> None:
        if self._count >= self.capacity:
            raise FilterFullError(
                f"bloom filter at provisioned capacity {self.capacity}"
            )
        for pos in self._positions(item):
            self._set_bit(pos)
        self._count += 1

    def _contains(self, item: bytes) -> bool:
        return all(self._get_bit(pos) for pos in self._positions(item))

    def _delete(self, item: bytes) -> bool:
        raise self._deletion_unsupported()

    # -- batch overrides ------------------------------------------------------

    def _batch_positions(self, items: Sequence[bytes]):
        """(k, len(items)) matrix of bit positions, one row per hash —
        identical values to k runs of :func:`double_hashes` per item."""
        bits = np.uint64(self._bits)
        return [
            h % bits
            for h in double_hashes_np(items, self._k, self._params.seed)
        ]

    def _insert_batch(self, items: Sequence[bytes]) -> None:
        if np is None or len(items) < VECTOR_MIN_BATCH:
            return super()._insert_batch(items)
        allowed = self.capacity - self._count
        accepted = items[:allowed] if allowed < len(items) else items
        if accepted:
            buf = self._buf
            for pos in self._batch_positions(accepted):
                masks = np.uint8(1) << (pos & np.uint64(7)).astype(np.uint8)
                np.bitwise_or.at(buf, (pos >> np.uint64(3)).astype(np.intp), masks)
            self._count += len(accepted)
        if allowed < len(items):
            raise FilterFullError(
                f"bloom filter at provisioned capacity {self.capacity}",
                inserted_count=len(accepted),
            )

    def _contains_batch(self, items: Sequence[bytes]) -> List[bool]:
        if np is None or len(items) < VECTOR_MIN_BATCH:
            return super()._contains_batch(items)
        buf = self._buf
        hit = np.ones(len(items), dtype=bool)
        for pos in self._batch_positions(items):
            bits = (buf[(pos >> np.uint64(3)).astype(np.intp)]
                    >> (pos & np.uint64(7)).astype(np.uint8))
            hit &= (bits & 1).astype(bool)
        return hit.tolist()

    def slot_count(self) -> int:
        return self._bits

    def load_factor(self) -> float:
        """For Bloom filters, report the fill ratio of set bits."""
        if not self._bits:
            return 0.0
        ones = sum(bin(b).count("1") for b in self._array)
        return ones / self._bits

    def size_in_bytes(self) -> int:
        return len(self._array)

    def current_fpp(self) -> float:
        """Analytic FPP estimate at current occupancy."""
        fill = self.load_factor()
        return fill**self._k

    def effective_fpp(self) -> float:
        return self.current_fpp()

    def to_bytes(self) -> bytes:
        return bytes(self._array)

    @classmethod
    def expected_payload_bytes(cls, params: FilterParams) -> int:
        bits, _ = _optimal_geometry(params.capacity, params.fpp)
        return (bits + 7) // 8

    @classmethod
    def from_bytes(cls, params: FilterParams, payload: bytes) -> "BloomFilter":
        filt = cls(params)
        if len(payload) != len(filt._array):
            raise FilterSerializationError(
                f"bloom payload is {len(payload)} bytes, expected "
                f"{len(filt._array)} for capacity={params.capacity} "
                f"fpp={params.fpp}"
            )
        filt._array = bytearray(payload)
        filt._refresh_view()
        # Item count is not recoverable from the bit array; estimate it from
        # the fill ratio (standard Bloom cardinality estimator).
        ones = sum(bin(b).count("1") for b in filt._array)
        if ones and ones < filt._bits:
            est = -filt._bits / filt._k * math.log(1 - ones / filt._bits)
            filt._count = min(params.capacity, round(est))
        elif ones:
            filt._count = params.capacity
        return filt


class CountingBloomFilter(AMQFilter):
    """Bloom filter with 4-bit saturating counters, enabling deletion."""

    name = "counting-bloom"
    supports_deletion = True

    _COUNTER_MAX = 0xF

    def __init__(self, params: FilterParams) -> None:
        super().__init__(params)
        self._cells, self._k = _optimal_geometry(params.capacity, params.fpp)
        # Two 4-bit counters per byte.
        self._array = bytearray((self._cells + 1) // 2)
        self._refresh_view()

    def _refresh_view(self) -> None:
        self._buf = None if np is None else np.frombuffer(self._array, dtype=np.uint8)

    def _positions(self, item: bytes):
        for h in double_hashes(item, self._k, self._params.seed):
            yield h % self._cells

    def _get(self, pos: int) -> int:
        byte = self._array[pos >> 1]
        return (byte >> 4) if pos & 1 else (byte & 0xF)

    def _set(self, pos: int, value: int) -> None:
        idx = pos >> 1
        if pos & 1:
            self._array[idx] = (self._array[idx] & 0x0F) | (value << 4)
        else:
            self._array[idx] = (self._array[idx] & 0xF0) | value

    def _insert(self, item: bytes) -> None:
        if self._count >= self.capacity:
            raise FilterFullError(
                f"counting bloom filter at provisioned capacity {self.capacity}"
            )
        for pos in self._positions(item):
            current = self._get(pos)
            if current < self._COUNTER_MAX:
                # Saturated counters are never decremented, preserving the
                # no-false-negative invariant at the cost of rare stuck cells.
                self._set(pos, current + 1)
        self._count += 1

    def _contains(self, item: bytes) -> bool:
        return all(self._get(pos) > 0 for pos in self._positions(item))

    # -- batch overrides ------------------------------------------------------

    def _batch_positions(self, items: Sequence[bytes]):
        cells = np.uint64(self._cells)
        return [
            h % cells
            for h in double_hashes_np(items, self._k, self._params.seed)
        ]

    def _insert_batch(self, items: Sequence[bytes]) -> None:
        if np is None or len(items) < VECTOR_MIN_BATCH:
            return super()._insert_batch(items)
        allowed = self.capacity - self._count
        accepted = items[:allowed] if allowed < len(items) else items
        if accepted:
            # Unpack nibble counters, accumulate, saturate, repack. A
            # sequence of saturating +1 increments from v is exactly
            # min(v + n, MAX) — the clip reproduces scalar semantics.
            buf = self._buf
            counters = np.empty(2 * len(buf), dtype=np.uint32)
            counters[0::2] = buf & 0xF
            counters[1::2] = buf >> 4
            for pos in self._batch_positions(accepted):
                np.add.at(counters, pos.astype(np.intp), 1)
            np.minimum(counters, self._COUNTER_MAX, out=counters)
            buf[:] = (counters[0::2] | (counters[1::2] << 4)).astype(np.uint8)
            self._count += len(accepted)
        if allowed < len(items):
            raise FilterFullError(
                f"counting bloom filter at provisioned capacity {self.capacity}",
                inserted_count=len(accepted),
            )

    def _contains_batch(self, items: Sequence[bytes]) -> List[bool]:
        if np is None or len(items) < VECTOR_MIN_BATCH:
            return super()._contains_batch(items)
        buf = self._buf
        hit = np.ones(len(items), dtype=bool)
        for pos in self._batch_positions(items):
            idx = pos.astype(np.intp)
            nibble = np.where(idx & 1, buf[idx >> 1] >> 4, buf[idx >> 1] & 0xF)
            hit &= nibble > 0
        return hit.tolist()

    # delete_batch stays on the generic scalar loop: consecutive deletes
    # are order-dependent (a delete observes the decrements of earlier
    # batch members), which vectorized accumulation cannot reproduce.

    def _delete(self, item: bytes) -> bool:
        positions = list(self._positions(item))
        if not all(self._get(pos) > 0 for pos in positions):
            return False
        for pos in positions:
            current = self._get(pos)
            if 0 < current < self._COUNTER_MAX:
                self._set(pos, current - 1)
        self._count = max(0, self._count - 1)
        return True

    def slot_count(self) -> int:
        return self._cells

    def load_factor(self) -> float:
        if not self._cells:
            return 0.0
        occupied = sum(1 for pos in range(self._cells) if self._get(pos) > 0)
        return occupied / self._cells

    def size_in_bytes(self) -> int:
        return len(self._array)

    def effective_fpp(self) -> float:
        return self.load_factor() ** self._k

    def to_bytes(self) -> bytes:
        return self._count.to_bytes(4, "big") + bytes(self._array)

    @classmethod
    def expected_payload_bytes(cls, params: FilterParams) -> int:
        cells, _ = _optimal_geometry(params.capacity, params.fpp)
        return 4 + (cells + 1) // 2

    @classmethod
    def from_bytes(
        cls, params: FilterParams, payload: bytes
    ) -> "CountingBloomFilter":
        if len(payload) < 4:
            raise FilterSerializationError("counting bloom payload too short")
        filt = cls(params)
        count = int.from_bytes(payload[:4], "big")
        if count > params.capacity:
            raise FilterSerializationError(
                f"counting bloom stored count {count} exceeds capacity "
                f"{params.capacity}"
            )
        body = payload[4:]
        if len(body) != len(filt._array):
            raise FilterSerializationError(
                f"counting bloom payload is {len(body)} bytes, expected "
                f"{len(filt._array)}"
            )
        filt._array = bytearray(body)
        filt._refresh_view()
        filt._count = count
        return filt
