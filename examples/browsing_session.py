#!/usr/bin/env python3
"""A user browsing the web over PQ TLS — the paper's §5.3 scenario.

Simulates a user visiting domains from a synthetic Tranco-style ranking
(Zipf-1.9 visits, Pareto-2.5 pages, third-party content), running a real
TLS handshake with ICA suppression against every unique destination, then
prints the Fig. 5 style summary: data saved per algorithm, TTFB impact,
false positives.

Run:  python examples/browsing_session.py [num_domains]
"""

import sys

from repro.experiments import fig5
from repro.netsim.metrics import summarize
from repro.webmodel import BrowsingSessionSimulator, SessionConfig

num_domains = int(sys.argv[1]) if len(sys.argv) > 1 else 100

print(f"simulating a browsing session over {num_domains} domains...\n")
simulator = BrowsingSessionSimulator(
    SessionConfig(seed=11, num_domains=num_domains)
)
results = simulator.run_many(runs=3)

volume = fig5.data_volume(results)
print(fig5.format_data_volume(volume))

print()
print(fig5.format_ttfb(fig5.ttfb_scenarios(results)))

result = results[0]
sphincs_full = summarize(result.ttfb_samples("sphincs-128f", False))
sphincs_sup = summarize(result.ttfb_samples("sphincs-128f", True))
print(
    f"\nSPHINCS+-128f p99 TTFB: {1000 * sphincs_full.p99:.0f} ms full vs "
    f"{1000 * sphincs_sup.p99:.0f} ms suppressed "
    f"({1000 * (sphincs_full.p99 - sphincs_sup.p99):.0f} ms saved in the tail)"
)
print(
    f"server-side filter stats: {simulator.server_suppressor.lookups} lookups, "
    f"{simulator.server_suppressor.hits} suppression hits"
)
