#!/usr/bin/env python3
"""Privacy-hardened suppression: ECH plus targeted per-peer filters.

§6 of the paper concedes that a cleartext ClientHello filter "creates
unencrypted signals that could be used to identify which ICA certs are
known" and sketches three mitigations. This example composes two of them
and *measures* the exposure with the package's privacy metrics:

1. baseline — every client advertises its own history-derived filter in
   cleartext (maximally useful, maximally fingerprintable);
2. universal filter — every client advertises the same curated hot set
   (herd anonymity, paper's suggestion);
3. targeted filters + ECH — per-peer filters (tiny) wrapped in an
   Encrypted ClientHello (observer sees nothing at all).

Run:  python examples/private_browsing.py
"""

from repro.analysis.privacy import (
    distinguishable_fraction,
    membership_leak,
    payload_entropy_bits,
)
from repro.core import ClientSuppressor
from repro.core.adaptive import AdaptiveSuppressor
from repro.pki import IntermediatePreload, build_hierarchy
from repro.tls.client import ClientConfig, TLSClient
from repro.tls.ech import ECHConfig, encrypt_client_hello, observable_extension_types
from repro.tls.extensions import ExtensionType

pki = build_hierarchy("ecdsa-p256", total_icas=60, num_roots=3, seed=101)
store = pki.trust_store()
icas = pki.ica_certificates()
NUM_CLIENTS = 8

# --- scenario 1: personal history filters, cleartext -------------------------
history_payloads = []
for i in range(NUM_CLIENTS):
    subset = icas[i * 5 : i * 5 + 12]  # each client browsed differently
    cs = ClientSuppressor(preload=IntermediatePreload(subset), budget_bytes=None)
    history_payloads.append(cs.extension_payload())

# --- scenario 2: one curated universal filter ---------------------------------
universal = ClientSuppressor(preload=IntermediatePreload(icas), budget_bytes=None)
universal_payloads = [universal.extension_payload()] * NUM_CLIENTS

print("scenario                      distinguishable  identity bits")
for label, payloads in (
    ("history filters (cleartext)", history_payloads),
    ("universal filter (cleartext)", universal_payloads),
):
    print(
        f"{label:28s}  {distinguishable_fraction(payloads):>15.2f}"
        f"  {payload_entropy_bits(payloads):>13.2f}"
    )

# What an observer extracts from one cleartext history filter:
leak = membership_leak(
    history_payloads[0],
    known_fingerprints=[c.fingerprint() for c in icas[:12]],
    unknown_fingerprints=[c.fingerprint() for c in icas[30:]],
)
print(
    f"\nobserver probing one cleartext history filter: "
    f"TPR={leak['true_positive_rate']:.2f}, FPR={leak['false_positive_rate']:.3f} "
    f"(the filter's own FPP is the only cover)"
)

# --- scenario 3: targeted filters inside ECH ------------------------------------
adaptive = AdaptiveSuppressor(universal, fallback_universal=False)
cred = pki.issue_credential("bank.example", pki.paths_by_depth(2)[0])
adaptive.observe("bank.example", cred.chain)
ech = ECHConfig(config_id=3, public_name="cdn.example", seed=7)

inner = TLSClient(
    ClientConfig(
        trust_store=store,
        hostname="bank.example",
        ica_filter_payload=adaptive.extension_payload_for("bank.example"),
        at_time=100,
    )
).create_client_hello()
outer = encrypt_client_hello(inner, ech, client_seed=5)
visible = observable_extension_types(outer)

print(
    f"\ntargeted filter: {len(adaptive.extension_payload_for('bank.example'))} B "
    f"(vs {len(universal.extension_payload())} B universal)"
)
print(f"outer ClientHello: {len(outer)} B, visible extensions: {visible}")
print(
    "IC filter visible to observer:",
    ExtensionType.ICA_SUPPRESSION in visible,
)
print("real SNI visible to observer:", b"bank.example" in outer)
