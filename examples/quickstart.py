#!/usr/bin/env python3
"""Quickstart: suppress intermediate certificates in one PQ TLS handshake.

Builds a synthetic post-quantum PKI, preloads the client's ICA cache,
advertises the cache as a cuckoo filter in the ClientHello, and compares
a full handshake against a suppressed one — the paper's core mechanism in
~60 lines.

Run:  python examples/quickstart.py
"""

from repro.core import ClientSuppressor, ServerSuppressor
from repro.netsim.tcp import TCPConfig, flights_needed
from repro.pki import IntermediatePreload, build_hierarchy
from repro.tls import ServerConfig, run_handshake

# 1. A synthetic Web PKI signed with Dilithium III (NIST level 3).
hierarchy = build_hierarchy("dilithium3", total_icas=40, num_roots=3, seed=7)
trust_store = hierarchy.trust_store()

# 2. The client: an ICA cache seeded from a preload list (Mozilla-style),
#    mirrored into a cuckoo filter (0.1% FPP, 0.9 load factor).
suppressor = ClientSuppressor(
    preload=IntermediatePreload(hierarchy.ica_certificates()),
    filter_kind="cuckoo",
    fpp=1e-3,
    load_factor=0.9,
    budget_bytes=None,
)
print(f"client cache: {len(suppressor.cache)} ICAs")
print(f"advertised filter: {len(suppressor.extension_payload())} bytes\n")

# 3. A server with a two-ICA chain and the suppression handler installed.
credential = hierarchy.issue_credential(
    "www.example.com", hierarchy.paths_by_depth(2)[0]
)
server = ServerConfig(
    credential=credential, suppression_handler=ServerSuppressor()
)

# 4. Handshake twice: without and with the IC-filter extension.
plain = run_handshake(
    suppressor.client_config(
        trust_store, "www.example.com", kem_name="ntru-hps-509",
        at_time=100, use_suppression=False,
    ),
    server,
)
suppressed = run_handshake(
    suppressor.client_config(
        trust_store, "www.example.com", kem_name="ntru-hps-509", at_time=100,
    ),
    server,
)

tcp = TCPConfig()  # Linux default: 10 MSS ~ 14.6 KB
for label, trace in (("full", plain), ("suppressed", suppressed)):
    flight = trace.attempts[0].server_flight_bytes
    print(
        f"{label:11s} outcome={trace.outcome.value:9s} "
        f"server flight={flight:6d} B "
        f"({flights_needed(flight, tcp)} round trip(s)), "
        f"ICA bytes sent={trace.ica_bytes_sent}"
    )

saved = suppressed.ica_bytes_suppressed
print(
    f"\nsuppressed {suppressed.suppressed_ica_count} ICA certificates, "
    f"saving {saved} bytes and "
    f"{flights_needed(plain.attempts[0].server_flight_bytes, tcp) - flights_needed(suppressed.attempts[0].server_flight_bytes, tcp)} "
    f"round trip(s) on this handshake"
)
