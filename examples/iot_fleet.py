#!/usr/bin/env python3
"""ICA suppression for an IoT fleet — the paper's stated future work.

The conclusion plans "to evaluate the ICA suppression performance in
non-Web-based environments (e.g., IoT, mobile devices)". IoT stresses the
mechanism in three ways this example exercises:

* constrained links (small initcwnd, long RTTs) amplify every extra
  round trip;
* devices live for years, so the ICA cache must survive certificate
  rotation — we rotate the fleet's issuing ICA and rely on the dynamic
  filter updates of §4.2 (delete expired, insert replacement);
* a revoked ICA must drop out of the advertised set immediately.

Run:  python examples/iot_fleet.py
"""

from repro.core import ClientSuppressor, ServerSuppressor
from repro.netsim.tcp import TCPConfig, flights_needed
from repro.pki import IntermediatePreload, RevocationList, build_hierarchy
from repro.tls import ServerConfig, run_handshake

SATELLITE_RTT_S = 0.6
IOT_TCP = TCPConfig(initcwnd_segments=4)  # conservative embedded stack

hierarchy = build_hierarchy("falcon-512", total_icas=6, num_roots=1, seed=13)
store = hierarchy.trust_store()

device = ClientSuppressor(
    preload=IntermediatePreload(hierarchy.ica_certificates()),
    filter_kind="vacuum",
    fpp=1e-4,
    budget_bytes=None,
)
gateway_suppression = ServerSuppressor()

cred = hierarchy.issue_credential("gw-0.fleet.local", hierarchy.paths_by_depth(2)[0])
gateway = ServerConfig(credential=cred, suppression_handler=gateway_suppression)


def report(label, trace):
    flight = trace.attempts[-1].server_flight_bytes
    rtts = flights_needed(flight, IOT_TCP)
    print(
        f"{label:28s} flight={flight:6d} B  {rtts} flight RTT(s)  "
        f"~{(2 + rtts - 1) * SATELLITE_RTT_S:.1f} s on a {SATELLITE_RTT_S:.1f} s-RTT link"
    )


plain = run_handshake(
    device.client_config(
        store, "gw-0.fleet.local", kem_name="kyber512", at_time=100,
        use_suppression=False,
    ),
    gateway,
)
report("full chain", plain)

suppressed = run_handshake(
    device.client_config(store, "gw-0.fleet.local", kem_name="kyber512", at_time=100),
    gateway,
)
report("suppressed", suppressed)

# --- Year two: the fleet's issuing ICA is rotated. -------------------------
print("\nrotating the issuing ICA (dynamic filter update, §4.2)...")
old_ica = cred.chain.intermediates[0]
root = hierarchy.roots[0]
new_issuer = root.create_subordinate("Fleet ICA v2", seed=0xFEE7)

revocations = RevocationList()
revocations.revoke(old_ica, at_time=200)
expired, revoked = device.maintain(at_time=200, revocation=revocations)
device.cache.add(new_issuer.certificate)
print(
    f"cache maintenance: {expired} expired, {revoked} revoked, "
    f"{len(device.cache)} ICAs cached, filter consistent: "
    f"{device.manager.consistent_with_cache()}"
)

# The gateway re-keys under the new ICA; suppression keeps working.
new_cred = hierarchy.issue_credential("gw-0.fleet.local")
from repro.pki.authority import ServerCredential
from repro.pki.chain import CertificateChain
from repro.pki.keys import KeyPair

keypair = KeyPair(new_issuer.certificate.public_key.algorithm, 0xDEC0)
leaf = new_issuer.issue_leaf_with_key("gw-0.fleet.local", keypair, not_before=150)
rotated = ServerCredential(
    chain=CertificateChain(leaf, (new_issuer.certificate,), root.certificate),
    keypair=keypair,
)
after = run_handshake(
    device.client_config(
        store, "gw-0.fleet.local", kem_name="kyber512", at_time=250,
        revocation=revocations,
    ),
    ServerConfig(credential=rotated, suppression_handler=ServerSuppressor()),
)
report("post-rotation suppressed", after)
assert after.succeeded and after.suppressed_ica_count == 1
print("\nrotation handled entirely through filter insert/delete — no rebuild")
