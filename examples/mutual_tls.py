#!/usr/bin/env python3
"""Mutual TLS with bidirectional ICA suppression.

§6 of the paper observes that using the suppression mechanism for client
authentication "does not present the same leakage since in TLS 1.3 all
handshake messages after the ServerHello are encrypted anyway". This
example runs that deployment: a zero-trust service pair where

* the client suppresses the *server's* ICAs via the ClientHello filter;
* the server advertises its own known-ICA filter inside
  EncryptedExtensions (encrypted on the wire), and the client suppresses
  its *own* chain in response;

then compares the bytes both directions against plain mutual TLS.

Run:  python examples/mutual_tls.py
"""

from repro.core import ClientSuppressor, ServerSuppressor
from repro.pki import IntermediatePreload, build_hierarchy
from repro.tls import ClientConfig, ServerConfig, run_handshake

# Two PKIs: a Dilithium-III web PKI for services, a Falcon-512 device PKI.
service_pki = build_hierarchy("dilithium3", total_icas=20, num_roots=2, seed=91)
device_pki = build_hierarchy("falcon-512", total_icas=10, num_roots=1, seed=92)

service_cred = service_pki.issue_credential(
    "orders.internal", service_pki.paths_by_depth(2)[0]
)
device_cred = device_pki.issue_credential(
    "pos-terminal-42", device_pki.paths_by_depth(2)[0]
)

# Client side: knows the service PKI's ICAs, advertises them.
client_side = ClientSuppressor(
    preload=IntermediatePreload(service_pki.ica_certificates()), budget_bytes=None
)
# Server side: knows the device PKI's ICAs, advertises them (encrypted).
server_side = ClientSuppressor(
    preload=IntermediatePreload(device_pki.ica_certificates()), budget_bytes=None
)
device_ica_cache = {c.subject: c for c in device_pki.ica_certificates()}


def configs(suppress: bool):
    client = ClientConfig(
        trust_store=service_pki.trust_store(),
        hostname="orders.internal",
        kem_name="kyber768",
        at_time=100,
        ica_filter_payload=client_side.extension_payload() if suppress else None,
        issuer_lookup=client_side.cache.lookup_issuer,
        credential=device_cred,
        own_suppression_handler=ServerSuppressor() if suppress else None,
    )
    server = ServerConfig(
        credential=service_cred,
        suppression_handler=ServerSuppressor() if suppress else None,
        request_client_certificate=True,
        client_trust_store=device_pki.trust_store(),
        client_issuer_lookup=device_ica_cache.get,
        ica_filter_payload=server_side.extension_payload() if suppress else None,
        at_time=100,
    )
    return client, server


for label, suppress in (("plain mTLS", False), ("suppressed mTLS", True)):
    trace = run_handshake(*configs(suppress))
    assert trace.succeeded, trace.final_attempt.failure_reason
    a = trace.attempts[0]
    print(
        f"{label:16s} server flight={a.server_flight_bytes:6d} B  "
        f"client flight={a.client_finished_bytes:6d} B  "
        f"total={a.total_bytes:6d} B"
    )

plain = run_handshake(*configs(False)).attempts[0]
supp = run_handshake(*configs(True)).attempts[0]
saved = plain.total_bytes - supp.total_bytes
print(
    f"\nbidirectional suppression saved {saved} bytes "
    f"({100 * saved / plain.total_bytes:.0f}% of the handshake), covering "
    f"{service_cred.chain.num_icas} server ICAs and "
    f"{device_cred.chain.num_icas} client ICAs"
)
print(
    "the server's filter traveled inside EncryptedExtensions — "
    "invisible to passive observers (§6)"
)
