#!/usr/bin/env python3
"""ICA suppression inside a service mesh.

§5.2's tuning note: "an app client that communicates with a small set of
peers (e.g., service mesh cases) can aim for a small FPP with less
advertised ICs." A mesh has a tiny, fully-known ICA population, so the
filter can run at a 100x tighter false-positive target and still be a
fraction of the ClientHello budget — and every single handshake in the
mesh suppresses its full chain.

Run:  python examples/service_mesh.py
"""

from repro.core import ClientSuppressor, ServerSuppressor, plan_filter
from repro.core.filter_config import clienthello_filter_budget
from repro.pki import IntermediatePreload, build_hierarchy
from repro.tls import HandshakeOutcome, ServerConfig, run_handshake

NUM_SERVICES = 24
MESH_ICAS = 8  # one small internal PKI

hierarchy = build_hierarchy("falcon-512", total_icas=MESH_ICAS, num_roots=1, seed=3)
store = hierarchy.trust_store()

# Plan the mesh filter: tiny capacity, aggressive 0.001% FPP — still far
# inside the PQ ClientHello budget.
budget = clienthello_filter_budget("kyber512")
plan = plan_filter(
    MESH_ICAS, filter_kind="vacuum", fpp=1e-5, load_factor=0.9,
    budget_bytes=budget, headroom=2.0,
)
print(
    f"mesh filter plan: {plan.filter_kind}, capacity {plan.params.capacity}, "
    f"fpp {plan.params.fpp:.2g}, {plan.predicted_payload_bytes} bytes "
    f"(budget {budget})"
)

sidecar = ClientSuppressor(
    preload=IntermediatePreload(hierarchy.ica_certificates()), plan=plan
)
suppression = ServerSuppressor()

services = [
    hierarchy.issue_credential(f"svc-{i}.mesh.internal")
    for i in range(NUM_SERVICES)
]

total_saved = 0
fps = 0
for i, credential in enumerate(services):
    trace = run_handshake(
        sidecar.client_config(
            store,
            credential.chain.leaf.subject,
            kem_name="kyber512",
            at_time=100,
            seed=i,
        ),
        ServerConfig(credential=credential, suppression_handler=suppression, seed=i),
    )
    assert trace.succeeded
    fps += trace.outcome is HandshakeOutcome.COMPLETED_AFTER_RETRY
    total_saved += trace.ica_bytes_suppressed

print(
    f"\n{NUM_SERVICES} mesh handshakes: saved {total_saved} ICA bytes, "
    f"{fps} false positives (expected ~0 at fpp=1e-5)"
)
print(
    f"filter hit rate server-side: {suppression.hits}/{suppression.lookups} lookups"
)
